//! Bit-field constants for the control registers the simulator interprets.

/// `HCR_EL2` — Hypervisor Configuration Register bits.
///
/// Bit positions follow the ARMv8 architecture reference manual; only the
/// bits the simulator interprets are defined.
pub mod hcr {
    /// VM: enable Stage-2 translation for EL1&0.
    pub const VM: u64 = 1 << 0;
    /// FMO: route physical FIQs to EL2.
    pub const FMO: u64 = 1 << 3;
    /// IMO: route physical IRQs to EL2 and enable virtual IRQs.
    pub const IMO: u64 = 1 << 4;
    /// AMO: route SErrors to EL2.
    pub const AMO: u64 = 1 << 5;
    /// VI: pending virtual IRQ.
    pub const VI: u64 = 1 << 7;
    /// TWI: trap `wfi` to EL2.
    pub const TWI: u64 = 1 << 13;
    /// TWE: trap `wfe` to EL2.
    pub const TWE: u64 = 1 << 14;
    /// TSC: trap `smc` to EL2.
    pub const TSC: u64 = 1 << 19;
    /// TVM: trap EL1 writes of virtual-memory control registers.
    pub const TVM: u64 = 1 << 26;
    /// TGE: trap general exceptions (all EL0 exceptions go to EL2).
    pub const TGE: u64 = 1 << 27;
    /// TRVM: trap EL1 reads of virtual-memory control registers.
    pub const TRVM: u64 = 1 << 30;
    /// E2H: EL2 hosts an OS (VHE register redirection), ARMv8.1.
    pub const E2H: u64 = 1 << 34;
    /// NV: nested virtualization: trap EL2-register accesses and `eret`
    /// from EL1, disguise `CurrentEL`, ARMv8.3.
    pub const NV: u64 = 1 << 42;
    /// NV1: variant control for which EL1 registers trap under NV.
    pub const NV1: u64 = 1 << 43;
    /// NV2: redirect register accesses to memory (NEVE / ARMv8.4-NV2).
    pub const NV2: u64 = 1 << 45;
}

/// `SPSR_ELx` — saved program status.
pub mod spsr {
    /// Mode field mask, `M[3:0]`.
    pub const M_MASK: u64 = 0xf;
    /// EL0, SP_EL0.
    pub const M_EL0T: u64 = 0b0000;
    /// EL1, SP_EL0.
    pub const M_EL1T: u64 = 0b0100;
    /// EL1, SP_EL1.
    pub const M_EL1H: u64 = 0b0101;
    /// EL2, SP_EL0.
    pub const M_EL2T: u64 = 0b1000;
    /// EL2, SP_EL2.
    pub const M_EL2H: u64 = 0b1001;
    /// IRQ mask bit.
    pub const I: u64 = 1 << 7;
    /// FIQ mask bit.
    pub const F: u64 = 1 << 6;

    /// Extracts the target exception level from the mode field.
    pub fn el_of(spsr: u64) -> u8 {
        ((spsr & M_MASK) >> 2) as u8
    }

    /// Builds a mode field for `el` using SP_ELx ("handler" stack).
    pub fn mode_h(el: u8) -> u64 {
        assert!(el <= 2, "EL3 is not modelled");
        if el == 0 {
            M_EL0T
        } else {
            ((el as u64) << 2) | 0b01
        }
    }
}

/// `CNTHCTL_EL2` — counter-timer hypervisor control.
pub mod cnthctl {
    /// EL1PCTEN: EL1/EL0 physical counter access does not trap.
    pub const EL1PCTEN: u64 = 1 << 0;
    /// EL1PCEN: EL1/EL0 physical timer access does not trap.
    pub const EL1PCEN: u64 = 1 << 1;
}

/// `CPTR_EL2` — architectural feature trap register.
pub mod cptr {
    /// TFP: trap floating point to EL2.
    pub const TFP: u64 = 1 << 10;
}

/// `ESR` — exception syndrome register encoding.
///
/// `ESR_ELx[31:26]` is the exception class (EC); `[24:0]` is the
/// instruction-specific syndrome (ISS). The simulator uses the
/// architectural EC values so hypervisor code reads naturally.
pub mod esr {
    /// Shift of the EC field.
    pub const EC_SHIFT: u32 = 26;
    /// EC: trapped `wfi`/`wfe`.
    pub const EC_WFX: u64 = 0x01;
    /// EC: trapped floating point.
    pub const EC_FP: u64 = 0x07;
    /// EC: `hvc` from AArch64.
    pub const EC_HVC64: u64 = 0x16;
    /// EC: `smc` from AArch64.
    pub const EC_SMC64: u64 = 0x17;
    /// EC: trapped `msr`/`mrs` (system register).
    pub const EC_SYSREG: u64 = 0x18;
    /// EC: trapped `eret` (ARMv8.3-NV).
    pub const EC_ERET: u64 = 0x1a;
    /// EC: instruction abort from a lower EL.
    pub const EC_IABT_LOW: u64 = 0x20;
    /// EC: data abort from a lower EL.
    pub const EC_DABT_LOW: u64 = 0x24;
    /// EC: `svc` from AArch64.
    pub const EC_SVC64: u64 = 0x15;
    /// EC: unknown/undefined instruction.
    pub const EC_UNKNOWN: u64 = 0x00;

    /// Builds an ESR value from an exception class and ISS.
    pub fn build(ec: u64, iss: u64) -> u64 {
        (ec << EC_SHIFT) | (iss & 0x1ff_ffff)
    }

    /// Extracts the exception class.
    pub fn ec(esr: u64) -> u64 {
        esr >> EC_SHIFT
    }

    /// Extracts the ISS field.
    pub fn iss(esr: u64) -> u64 {
        esr & 0x1ff_ffff
    }
}

/// `VTTBR_EL2` — VMID field handling.
pub mod vttbr {
    /// Shift of the VMID field (bits `[63:48]`).
    pub const VMID_SHIFT: u32 = 48;

    /// Extracts the VMID.
    pub fn vmid(vttbr: u64) -> u16 {
        (vttbr >> VMID_SHIFT) as u16
    }

    /// Extracts the Stage-2 table base address.
    pub fn baddr(vttbr: u64) -> u64 {
        vttbr & 0x0000_ffff_ffff_fffe
    }

    /// Composes a VTTBR value.
    pub fn build(vmid: u16, baddr: u64) -> u64 {
        ((vmid as u64) << VMID_SHIFT) | (baddr & 0x0000_ffff_ffff_fffe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsr_mode_round_trip() {
        for el in 0..=2u8 {
            let m = spsr::mode_h(el);
            assert_eq!(spsr::el_of(m), el, "el {el} mode {m:#x}");
        }
    }

    #[test]
    fn spsr_el2h_matches_arm_encoding() {
        assert_eq!(spsr::mode_h(2), spsr::M_EL2H);
        assert_eq!(spsr::mode_h(1), spsr::M_EL1H);
        assert_eq!(spsr::mode_h(0), spsr::M_EL0T);
    }

    #[test]
    fn esr_build_and_split() {
        let e = esr::build(esr::EC_HVC64, 0x1234);
        assert_eq!(esr::ec(e), esr::EC_HVC64);
        assert_eq!(esr::iss(e), 0x1234);
    }

    #[test]
    fn esr_iss_is_masked() {
        let e = esr::build(esr::EC_SYSREG, u64::MAX);
        assert_eq!(esr::iss(e), 0x1ff_ffff);
        assert_eq!(esr::ec(e), esr::EC_SYSREG);
    }

    #[test]
    fn vttbr_round_trip() {
        let v = vttbr::build(42, 0x8000_0000);
        assert_eq!(vttbr::vmid(v), 42);
        assert_eq!(vttbr::baddr(v), 0x8000_0000);
    }

    #[test]
    fn hcr_bits_are_distinct() {
        let bits = [
            hcr::VM,
            hcr::IMO,
            hcr::FMO,
            hcr::TWI,
            hcr::TSC,
            hcr::TVM,
            hcr::TGE,
            hcr::TRVM,
            hcr::E2H,
            hcr::NV,
            hcr::NV1,
            hcr::NV2,
        ];
        let mut acc = 0u64;
        for b in bits {
            assert_eq!(acc & b, 0, "overlapping bit {b:#x}");
            acc |= b;
        }
    }
}
