//! Backing storage for a CPU's system registers.

use crate::regs::{SysReg, NUM_LIST_REGS};
use std::collections::BTreeMap;

/// Number of dense storage slots: one per plain register, plus
/// `NUM_LIST_REGS` per indexed family (`ICH_AP0R`/`ICH_AP1R`/`ICH_LR`),
/// laid out in declaration order so slot order equals `SysReg`'s `Ord`.
const SLOTS: usize = 96;

/// The dense slot for `reg`, or `None` for indexed registers beyond the
/// family capacity (those fall back to the overflow map).
///
/// The arm order mirrors the `SysReg` declaration exactly; the
/// `slots_are_bijective_and_ordered` test fails on any drift.
fn slot(reg: SysReg) -> Option<usize> {
    Some(match reg {
        SysReg::SctlrEl1 => 0,
        SysReg::Ttbr0El1 => 1,
        SysReg::Ttbr1El1 => 2,
        SysReg::TcrEl1 => 3,
        SysReg::EsrEl1 => 4,
        SysReg::FarEl1 => 5,
        SysReg::Afsr0El1 => 6,
        SysReg::Afsr1El1 => 7,
        SysReg::MairEl1 => 8,
        SysReg::AmairEl1 => 9,
        SysReg::ContextidrEl1 => 10,
        SysReg::CpacrEl1 => 11,
        SysReg::ElrEl1 => 12,
        SysReg::SpsrEl1 => 13,
        SysReg::SpEl1 => 14,
        SysReg::VbarEl1 => 15,
        SysReg::ParEl1 => 16,
        SysReg::CntkctlEl1 => 17,
        SysReg::CsselrEl1 => 18,
        SysReg::SpEl0 => 19,
        SysReg::TpidrEl0 => 20,
        SysReg::TpidrroEl0 => 21,
        SysReg::TpidrEl1 => 22,
        SysReg::HcrEl2 => 23,
        SysReg::HacrEl2 => 24,
        SysReg::HpfarEl2 => 25,
        SysReg::HstrEl2 => 26,
        SysReg::TpidrEl2 => 27,
        SysReg::VmpidrEl2 => 28,
        SysReg::VpidrEl2 => 29,
        SysReg::VtcrEl2 => 30,
        SysReg::VttbrEl2 => 31,
        SysReg::VncrEl2 => 32,
        SysReg::SctlrEl2 => 33,
        SysReg::Ttbr0El2 => 34,
        SysReg::Ttbr1El2 => 35,
        SysReg::TcrEl2 => 36,
        SysReg::EsrEl2 => 37,
        SysReg::FarEl2 => 38,
        SysReg::Afsr0El2 => 39,
        SysReg::Afsr1El2 => 40,
        SysReg::MairEl2 => 41,
        SysReg::AmairEl2 => 42,
        SysReg::ContextidrEl2 => 43,
        SysReg::ElrEl2 => 44,
        SysReg::SpsrEl2 => 45,
        SysReg::SpEl2 => 46,
        SysReg::VbarEl2 => 47,
        SysReg::CptrEl2 => 48,
        SysReg::MdcrEl2 => 49,
        SysReg::MidrEl1 => 50,
        SysReg::MpidrEl1 => 51,
        SysReg::CntfrqEl0 => 52,
        SysReg::CnthctlEl2 => 53,
        SysReg::CntvoffEl2 => 54,
        SysReg::CntvCtlEl0 => 55,
        SysReg::CntvCvalEl0 => 56,
        SysReg::CntpCtlEl0 => 57,
        SysReg::CntpCvalEl0 => 58,
        SysReg::CnthpCtlEl2 => 59,
        SysReg::CnthpCvalEl2 => 60,
        SysReg::CnthvCtlEl2 => 61,
        SysReg::CnthvCvalEl2 => 62,
        SysReg::IccIar1El1 => 63,
        SysReg::IccEoir1El1 => 64,
        SysReg::IccDirEl1 => 65,
        SysReg::IccPmrEl1 => 66,
        SysReg::IccBpr1El1 => 67,
        SysReg::IccIgrpen1El1 => 68,
        SysReg::IccSgi1rEl1 => 69,
        SysReg::IccRprEl1 => 70,
        SysReg::IccCtlrEl1 => 71,
        SysReg::IccSreEl1 => 72,
        SysReg::IccSreEl2 => 73,
        SysReg::IccHppir1El1 => 74,
        SysReg::IchHcrEl2 => 75,
        SysReg::IchVtrEl2 => 76,
        SysReg::IchVmcrEl2 => 77,
        SysReg::IchMisrEl2 => 78,
        SysReg::IchEisrEl2 => 79,
        SysReg::IchElrsrEl2 => 80,
        SysReg::IchAp0rEl2(n) if n < NUM_LIST_REGS => 81 + n as usize,
        SysReg::IchAp1rEl2(n) if n < NUM_LIST_REGS => 85 + n as usize,
        SysReg::IchLrEl2(n) if n < NUM_LIST_REGS => 89 + n as usize,
        SysReg::MdscrEl1 => 93,
        SysReg::PmuserenrEl0 => 94,
        SysReg::PmselrEl0 => 95,
        SysReg::IchAp0rEl2(_) | SysReg::IchAp1rEl2(_) | SysReg::IchLrEl2(_) => return None,
    })
}

/// The reset value of `reg` (what an unwritten register reads as).
fn reset_value(reg: SysReg) -> u64 {
    match reg {
        SysReg::MidrEl1 => RESET_MIDR,
        SysReg::IchVtrEl2 => reset_ich_vtr(),
        SysReg::CntfrqEl0 => 100_000_000, // 100 MHz system counter
        _ => 0,
    }
}

/// A register file: the values of every modelled system register.
///
/// Unset registers read as their reset value (0, except identification
/// registers which carry fixed implementation values). The file does not
/// enforce access permissions — that is the CPU model's trap-routing job;
/// it only enforces hardware read-only semantics via
/// [`RegFile::write_checked`].
///
/// Storage is a dense array indexed by declaration order, pre-filled
/// with reset values, so the interpreter's per-step register reads are a
/// single load. The `written` bitset preserves the sparse-map
/// observables: equality, [`RegFile::population`] and [`RegFile::iter`]
/// distinguish a register explicitly written with its reset value from
/// one never touched, exactly as the previous `BTreeMap` representation
/// did.
#[derive(Debug, PartialEq, Eq)]
pub struct RegFile {
    values: Box<[u64; SLOTS]>,
    written: u128,
    /// Indexed registers beyond the dense family capacity. Nothing the
    /// modelled hardware exposes lands here; it keeps the API total.
    overflow: BTreeMap<SysReg, u64>,
}

impl Clone for RegFile {
    fn clone(&self) -> Self {
        Self {
            values: self.values.clone(),
            written: self.written,
            overflow: self.overflow.clone(),
        }
    }

    /// Allocation-free: reuses the existing dense array. Snapshot
    /// restores run this per core, so it is a straight memcpy.
    fn clone_from(&mut self, source: &Self) {
        *self.values = *source.values;
        self.written = source.written;
        self.overflow.clone_from(&source.overflow);
    }
}

/// `MIDR_EL1` value the simulator reports (an ARMv8 implementer code).
pub const RESET_MIDR: u64 = 0x410f_d070;

/// `ICH_VTR_EL2`: ListRegs field = number of list registers minus one.
fn reset_ich_vtr() -> u64 {
    (NUM_LIST_REGS as u64) - 1
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// Creates a register file with architectural reset values.
    pub fn new() -> Self {
        let mut values = Box::new([0u64; SLOTS]);
        for reg in [SysReg::MidrEl1, SysReg::IchVtrEl2, SysReg::CntfrqEl0] {
            values[slot(reg).unwrap()] = reset_value(reg);
        }
        Self {
            values,
            written: 0,
            overflow: BTreeMap::new(),
        }
    }

    /// Reads a register (reset value if never written).
    pub fn read(&self, reg: SysReg) -> u64 {
        match slot(reg) {
            Some(i) => self.values[i],
            None => self.overflow.get(&reg).copied().unwrap_or(0),
        }
    }

    /// Writes a register unconditionally (hardware-internal updates, e.g.
    /// the CPU latching `ESR_EL2` on an exception, may write registers
    /// software cannot).
    pub fn write(&mut self, reg: SysReg, value: u64) {
        match slot(reg) {
            Some(i) => {
                self.values[i] = value;
                self.written |= 1 << i;
            }
            None => {
                self.overflow.insert(reg, value);
            }
        }
    }

    /// Writes a register as a software `msr` would; writes to read-only
    /// registers are ignored (the architecture makes them UNDEFINED or
    /// ignores them; the CPU model raises the trap before we get here for
    /// the cases that matter).
    pub fn write_checked(&mut self, reg: SysReg, value: u64) {
        if reg.is_read_only() {
            return;
        }
        self.write(reg, value);
    }

    /// Copies the value of `src` into `dst` (used by world-switch code and
    /// by NEVE redirection tests).
    pub fn copy(&mut self, src: SysReg, dst: SysReg) {
        let v = self.read(src);
        self.write(dst, v);
    }

    /// Number of registers explicitly written so far.
    pub fn population(&self) -> usize {
        self.written.count_ones() as usize + self.overflow.len()
    }

    /// Iterates over explicitly-written registers in `SysReg` order.
    pub fn iter(&self) -> impl Iterator<Item = (SysReg, u64)> + '_ {
        let mut pairs: Vec<(SysReg, u64)> = SysReg::all()
            .into_iter()
            .filter_map(|reg| {
                let i = slot(reg)?;
                (self.written & (1 << i) != 0).then(|| (reg, self.values[i]))
            })
            .chain(self.overflow.iter().map(|(&r, &v)| (r, v)))
            .collect();
        pairs.sort_unstable_by_key(|&(r, _)| r);
        pairs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_registers_read_reset_values() {
        let f = RegFile::new();
        assert_eq!(f.read(SysReg::SctlrEl1), 0);
        assert_eq!(f.read(SysReg::MidrEl1), RESET_MIDR);
        assert_eq!(f.read(SysReg::IchVtrEl2) + 1, NUM_LIST_REGS as u64);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut f = RegFile::new();
        f.write(SysReg::VbarEl2, 0xffff_0000_0000_0800);
        assert_eq!(f.read(SysReg::VbarEl2), 0xffff_0000_0000_0800);
    }

    #[test]
    fn checked_write_ignores_read_only() {
        let mut f = RegFile::new();
        f.write_checked(SysReg::MidrEl1, 0xdead);
        assert_eq!(f.read(SysReg::MidrEl1), RESET_MIDR);
        // Hardware-internal writes still work (the GIC updates EISR).
        f.write(SysReg::IchEisrEl2, 0b11);
        assert_eq!(f.read(SysReg::IchEisrEl2), 0b11);
    }

    #[test]
    fn copy_moves_values() {
        let mut f = RegFile::new();
        f.write(SysReg::VbarEl2, 77);
        f.copy(SysReg::VbarEl2, SysReg::VbarEl1);
        assert_eq!(f.read(SysReg::VbarEl1), 77);
    }

    #[test]
    fn indexed_registers_are_independent() {
        let mut f = RegFile::new();
        f.write(SysReg::IchLrEl2(0), 1);
        f.write(SysReg::IchLrEl2(1), 2);
        assert_eq!(f.read(SysReg::IchLrEl2(0)), 1);
        assert_eq!(f.read(SysReg::IchLrEl2(1)), 2);
        assert_eq!(f.read(SysReg::IchLrEl2(2)), 0);
    }

    /// The dense layout is a bijection onto `0..SLOTS` and follows
    /// `SysReg`'s `Ord` (declaration) order, so `iter` and equality
    /// behave exactly like the sparse-map representation they replaced.
    #[test]
    fn slots_are_bijective_and_ordered() {
        let mut regs = SysReg::all();
        for n in 0..NUM_LIST_REGS {
            for fam in [SysReg::IchAp0rEl2, SysReg::IchAp1rEl2, SysReg::IchLrEl2] {
                if !regs.contains(&fam(n)) {
                    regs.push(fam(n));
                }
            }
        }
        regs.sort_unstable();
        let slots: Vec<usize> = regs.iter().map(|&r| slot(r).unwrap()).collect();
        // Strictly increasing ⇒ unique and in declaration order.
        assert!(slots.windows(2).all(|w| w[0] < w[1]), "{slots:?}");
        assert_eq!(*slots.first().unwrap(), 0);
        assert_eq!(*slots.last().unwrap(), SLOTS - 1);
        assert_eq!(slots.len(), SLOTS);
        // Beyond-capacity indexed registers fall back to the overflow map.
        assert_eq!(slot(SysReg::IchLrEl2(NUM_LIST_REGS)), None);
    }

    #[test]
    fn equality_distinguishes_written_reset_values() {
        let a = RegFile::new();
        let mut b = RegFile::new();
        assert_eq!(a, b);
        b.write(SysReg::SctlrEl1, 0); // explicit write of the reset value
        assert_ne!(a, b);
        assert_eq!(b.population(), 1);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![(SysReg::SctlrEl1, 0)]);
    }
}
