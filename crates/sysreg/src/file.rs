//! Backing storage for a CPU's system registers.

use crate::regs::SysReg;
use std::collections::BTreeMap;

/// A register file: the values of every modelled system register.
///
/// Unset registers read as their reset value (0, except identification
/// registers which carry fixed implementation values). The file does not
/// enforce access permissions — that is the CPU model's trap-routing job;
/// it only enforces hardware read-only semantics via
/// [`RegFile::write_checked`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegFile {
    values: BTreeMap<SysReg, u64>,
}

/// `MIDR_EL1` value the simulator reports (an ARMv8 implementer code).
pub const RESET_MIDR: u64 = 0x410f_d070;

/// `ICH_VTR_EL2`: ListRegs field = number of list registers minus one.
fn reset_ich_vtr() -> u64 {
    (crate::regs::NUM_LIST_REGS as u64) - 1
}

impl RegFile {
    /// Creates a register file with architectural reset values.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a register (reset value if never written).
    pub fn read(&self, reg: SysReg) -> u64 {
        if let Some(v) = self.values.get(&reg) {
            return *v;
        }
        match reg {
            SysReg::MidrEl1 => RESET_MIDR,
            SysReg::IchVtrEl2 => reset_ich_vtr(),
            SysReg::CntfrqEl0 => 100_000_000, // 100 MHz system counter
            _ => 0,
        }
    }

    /// Writes a register unconditionally (hardware-internal updates, e.g.
    /// the CPU latching `ESR_EL2` on an exception, may write registers
    /// software cannot).
    pub fn write(&mut self, reg: SysReg, value: u64) {
        self.values.insert(reg, value);
    }

    /// Writes a register as a software `msr` would; writes to read-only
    /// registers are ignored (the architecture makes them UNDEFINED or
    /// ignores them; the CPU model raises the trap before we get here for
    /// the cases that matter).
    pub fn write_checked(&mut self, reg: SysReg, value: u64) {
        if reg.is_read_only() {
            return;
        }
        self.write(reg, value);
    }

    /// Copies the value of `src` into `dst` (used by world-switch code and
    /// by NEVE redirection tests).
    pub fn copy(&mut self, src: SysReg, dst: SysReg) {
        let v = self.read(src);
        self.write(dst, v);
    }

    /// Number of registers explicitly written so far.
    pub fn population(&self) -> usize {
        self.values.len()
    }

    /// Iterates over explicitly-written registers.
    pub fn iter(&self) -> impl Iterator<Item = (&SysReg, &u64)> {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_registers_read_reset_values() {
        let f = RegFile::new();
        assert_eq!(f.read(SysReg::SctlrEl1), 0);
        assert_eq!(f.read(SysReg::MidrEl1), RESET_MIDR);
        assert_eq!(
            f.read(SysReg::IchVtrEl2) + 1,
            crate::regs::NUM_LIST_REGS as u64
        );
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut f = RegFile::new();
        f.write(SysReg::VbarEl2, 0xffff_0000_0000_0800);
        assert_eq!(f.read(SysReg::VbarEl2), 0xffff_0000_0000_0800);
    }

    #[test]
    fn checked_write_ignores_read_only() {
        let mut f = RegFile::new();
        f.write_checked(SysReg::MidrEl1, 0xdead);
        assert_eq!(f.read(SysReg::MidrEl1), RESET_MIDR);
        // Hardware-internal writes still work (the GIC updates EISR).
        f.write(SysReg::IchEisrEl2, 0b11);
        assert_eq!(f.read(SysReg::IchEisrEl2), 0b11);
    }

    #[test]
    fn copy_moves_values() {
        let mut f = RegFile::new();
        f.write(SysReg::VbarEl2, 77);
        f.copy(SysReg::VbarEl2, SysReg::VbarEl1);
        assert_eq!(f.read(SysReg::VbarEl1), 77);
    }

    #[test]
    fn indexed_registers_are_independent() {
        let mut f = RegFile::new();
        f.write(SysReg::IchLrEl2(0), 1);
        f.write(SysReg::IchLrEl2(1), 2);
        assert_eq!(f.read(SysReg::IchLrEl2(0)), 1);
        assert_eq!(f.read(SysReg::IchLrEl2(1)), 2);
        assert_eq!(f.read(SysReg::IchLrEl2(2)), 0);
    }
}
