//! AArch64 system-register model for the NEVE simulator.
//!
//! This crate defines:
//!
//! - [`SysReg`]: every architectural register the simulator models
//!   (EL0/EL1/EL2 system registers, GIC CPU/hypervisor interface
//!   registers, generic-timer registers, and a small debug/PMU set).
//! - [`RegId`]: the *name* used by an instruction to refer to a register.
//!   With the Virtualization Host Extensions (VHE, ARMv8.1), one storage
//!   location can be reached under several names (`SCTLR_EL1` vs
//!   `SCTLR_EL12`), and the CPU redirects names to locations depending on
//!   `HCR_EL2.{E2H,TGE}` — that redirection is what the paper's Section 2
//!   background describes and what NEVE extends.
//! - [`classify`]: the register classification transcribed from the
//!   paper's Tables 3, 4 and 5 (which accesses NEVE defers to memory,
//!   redirects to EL1 counterparts, or still traps).
//! - [`RegFile`]: backing storage for a CPU's registers.
//! - [`bits`]: bit-field constants for the control registers the
//!   simulator interprets (`HCR_EL2`, `SPSR`, `CNTHCTL_EL2`, ...).

pub mod bits;
pub mod classify;
pub mod file;
pub mod regcode;
pub mod regs;

pub use classify::{el1_counterpart, neve_class, vncr_offset, NeveClass};
pub use file::RegFile;
pub use regs::{RegId, SysReg};
