//! Compact numeric codes for register names.
//!
//! Two users:
//!
//! - the CPU model encodes the trapped register, access direction and
//!   transfer GPR into `ESR_EL2.ISS` for system-register traps (standing
//!   in for the architectural Op0/Op1/CRn/CRm/Op2/Rt fields), and
//! - the paravirtualization of paper Section 4 encodes the replaced
//!   hypervisor instruction into the 16-bit `hvc` operand, "so that on
//!   the trap to EL2, the host hypervisor is informed of the original
//!   guest hypervisor instruction".

use crate::regs::{RegId, SysReg};

/// Alias-kind bits within a register code.
const KIND_SHIFT: u32 = 12;
/// Mask of the index field.
const INDEX_MASK: u16 = (1 << KIND_SHIFT) - 1;

/// Encodes a register name into a 16-bit code.
///
/// # Panics
///
/// Panics if the register is not in the modelled set.
pub fn encode(id: RegId) -> u16 {
    let (kind, reg) = match id {
        RegId::Plain(r) => (0u16, r),
        RegId::El12(r) => (1, r),
        RegId::El02(r) => (2, r),
    };
    // Memoized reverse index: encoding happens on every trapped
    // system-register access, so the linear scan of `SysReg::all()`
    // is replaced by a binary search of a sorted (register, index)
    // table built once.
    static INDEX: std::sync::OnceLock<Vec<(SysReg, u16)>> = std::sync::OnceLock::new();
    let table = INDEX.get_or_init(|| {
        let mut v: Vec<(SysReg, u16)> = SysReg::all()
            .into_iter()
            .enumerate()
            .map(|(i, r)| (r, i as u16))
            .collect();
        v.sort_unstable();
        v
    });
    let idx = match table.binary_search_by_key(&reg, |&(r, _)| r) {
        Ok(pos) => table[pos].1,
        Err(_) => panic!("{reg} not in modelled register set"),
    };
    (kind << KIND_SHIFT) | (idx & INDEX_MASK)
}

/// Decodes a 16-bit code back into a register name.
///
/// Returns `None` for out-of-range codes.
pub fn decode(code: u16) -> Option<RegId> {
    let all = SysReg::all_cached();
    let reg = *all.get((code & INDEX_MASK) as usize)?;
    Some(match code >> KIND_SHIFT {
        0 => RegId::Plain(reg),
        1 => RegId::El12(reg),
        2 => RegId::El02(reg),
        _ => return None,
    })
}

/// Builds the ISS payload of a trapped system-register access:
/// bits `[15:0]` register code, bit 16 write flag, bits `[22:17]` transfer GPR.
pub fn sysreg_iss(id: RegId, is_write: bool, rt: u8) -> u64 {
    (encode(id) as u64) | ((is_write as u64) << 16) | (((rt & 0x3f) as u64) << 17)
}

/// Splits a trapped-access ISS into (register, write, rt).
pub fn parse_sysreg_iss(iss: u64) -> Option<(RegId, bool, u8)> {
    let id = decode((iss & 0xffff) as u16)?;
    Some((id, iss & (1 << 16) != 0, ((iss >> 17) & 0x3f) as u8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_register_round_trips_in_all_alias_kinds() {
        for r in SysReg::all() {
            for id in [RegId::Plain(r), RegId::El12(r), RegId::El02(r)] {
                assert_eq!(decode(encode(id)), Some(id), "{id}");
            }
        }
    }

    #[test]
    fn codes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for r in SysReg::all() {
            assert!(seen.insert(encode(RegId::Plain(r))));
            assert!(seen.insert(encode(RegId::El12(r))));
        }
    }

    #[test]
    fn iss_round_trip() {
        let id = RegId::El12(SysReg::SctlrEl1);
        let iss = sysreg_iss(id, true, 17);
        let (id2, w, rt) = parse_sysreg_iss(iss).unwrap();
        assert_eq!(id2, id);
        assert!(w);
        assert_eq!(rt, 17);
        assert!(iss < 1 << 25, "fits the ISS field");
    }

    #[test]
    fn bad_code_decodes_to_none() {
        assert_eq!(decode(0x0fff), None);
        assert_eq!(decode(3 << KIND_SHIFT), None);
    }
}
