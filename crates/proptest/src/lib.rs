//! A self-contained, dependency-free drop-in for the subset of the
//! `proptest` API this workspace uses.
//!
//! The workspace builds in hermetic environments with no access to
//! crates.io, so the real `proptest` cannot be vendored. This shim keeps
//! every existing property test compiling and running unchanged:
//!
//! - [`proptest!`] with `name in strategy` and `name: Type` parameters,
//!   attributes/doc comments, and `#![proptest_config(..)]`;
//! - range and inclusive-range strategies over the integer types,
//!   [`any`], [`strategy::Just`], tuple strategies, `prop_map`,
//!   `prop_flat_map`, [`prop_oneof!`] and [`collection::vec`];
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Unlike upstream proptest there is **no shrinking** and the PRNG is
//! **deterministic**: each test function derives its seed from its own
//! name, so failures reproduce exactly across runs and machines —
//! which is also what this repository's determinism guarantees want
//! from a test harness.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Strategies over `bool` (mirrors `proptest::bool`).
pub mod bool {
    /// Generates `true` or `false` uniformly.
    pub const ANY: crate::arbitrary::Any<::core::primitive::bool> = crate::arbitrary::Any::NEW;
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (no early-return semantics:
/// failures panic like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks one of several strategies (all with the same `Value` type)
/// uniformly per generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($s)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Declares property tests. Each function body runs once per generated
/// case; parameters are either `name in strategy` or `name: Type`
/// (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $crate::__proptest_fn! { ($cfg) $(#[$attr])* fn $name($($params)*) $body }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fn {
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($params:tt)*) $body:block) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    stringify!($name),
                    __case as u64,
                );
                $crate::__proptest_bind! { __rng, $($params)* }
                $body
            }
        }
    };
}

// Binds one parameter per step. The `in strategy` form is matched with
// a `pat` fragment (whose follow set permits `in`); the `name: Type`
// shorthand needs a plain ident. Rules are tried in order, so the
// `pat`-rule failing on `:` falls through to the typed rule.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pname:pat in $strat:expr) => {
        let $pname = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $pname:pat in $strat:expr, $($rest:tt)*) => {
        let $pname = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $pname:ident : $ty:ty) => {
        let $pname: $ty =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
    ($rng:ident, $pname:ident : $ty:ty, $($rest:tt)*) => {
        let $pname: $ty =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Mixed parameter forms generate in-range values.
        #[test]
        fn mixed_params(a in 3u32..10, b: bool, c in 0u8..=4, d: u64) {
            prop_assert!((3..10).contains(&a));
            let _: bool = b;
            prop_assert!(c <= 4);
            let _ = d;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_respected(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn oneof_map_and_vec_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum E {
            A(u8),
            B,
        }
        let strat =
            crate::collection::vec(prop_oneof![(0u8..10).prop_map(E::A), Just(E::B)], 1..20);
        let mut rng = TestRng::deterministic("oneof", 1);
        let mut saw_a = false;
        let mut saw_b = false;
        for case in 0..64 {
            let mut rng2 = TestRng::deterministic("oneof", case);
            let v = strat.generate(&mut rng2);
            assert!(!v.is_empty() && v.len() < 20);
            saw_a |= v.iter().any(|e| matches!(e, E::A(_)));
            saw_b |= v.iter().any(|e| matches!(e, E::B));
        }
        assert!(saw_a && saw_b, "both branches must be exercised");
        // Determinism: the same seed yields the same value.
        let mut rng_b = TestRng::deterministic("oneof", 1);
        assert_eq!(strat.generate(&mut rng), strat.generate(&mut rng_b));
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let strat = -64i64..64;
        let mut any_negative = false;
        for case in 0..64 {
            let mut rng = TestRng::deterministic("signed", case);
            let v = strat.generate(&mut rng);
            assert!((-64..64).contains(&v));
            any_negative |= v < 0;
        }
        assert!(any_negative);
    }

    #[test]
    fn flat_map_threads_the_outer_value() {
        let strat = (1u64..5).prop_flat_map(|n| (Just(n), 0u64..100));
        for case in 0..32 {
            let mut rng = TestRng::deterministic("flat", case);
            let (n, x) = strat.generate(&mut rng);
            assert!((1..5).contains(&n));
            assert!(x < 100);
        }
    }
}
