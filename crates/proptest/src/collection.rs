//! Collection strategies (mirrors `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length specification: a fixed size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            start: r.start,
            end: r.end,
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates a `Vec` whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u128;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_range_sizes() {
        let strat = vec(0u8..3, 2..5);
        for case in 0..100 {
            let mut rng = TestRng::deterministic("vecsize", case);
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "{}", v.len());
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn vec_accepts_fixed_size() {
        let strat = vec(crate::bool::ANY, 9);
        let mut rng = TestRng::deterministic("vecfixed", 0);
        assert_eq!(strat.generate(&mut rng).len(), 9);
    }
}
