//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Object-safe: [`crate::prop_oneof!`] boxes heterogeneous strategies
/// with a common `Value` behind `dyn Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A uniform choice between boxed strategies (see [`crate::prop_oneof!`]).
pub struct Union<V> {
    branches: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; `branches` must be non-empty.
    pub fn new(branches: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one arm");
        Self { branches }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.branches.len() as u128) as usize;
        self.branches[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_hit_their_bounds_eventually() {
        let strat = 0u8..4;
        let mut seen = [false; 4];
        for case in 0..200 {
            let mut rng = TestRng::deterministic("bounds", case);
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "{seen:?}");
    }

    #[test]
    fn inclusive_range_includes_end() {
        let strat = 0u8..=255;
        let mut max = 0;
        for case in 0..400 {
            let mut rng = TestRng::deterministic("incl", case);
            max = max.max(strat.generate(&mut rng));
        }
        assert!(max > 250, "inclusive top should be reachable, saw {max}");
    }

    #[test]
    fn tuples_generate_componentwise() {
        let strat = (0u8..2, 10u64..12, Just("x"));
        let mut rng = TestRng::deterministic("tuple", 0);
        let (a, b, c) = strat.generate(&mut rng);
        assert!(a < 2);
        assert!((10..12).contains(&b));
        assert_eq!(c, "x");
    }
}
