//! Deterministic test runner state: configuration and PRNG.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A small, fast, deterministic PRNG (splitmix64). Each property derives
/// its stream from the test's name and the case index, so runs are
/// reproducible across processes and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

/// FNV-1a over a string, used to fold the test name into the seed.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl TestRng {
    /// Seeds a stream from a test name and case index.
    pub fn deterministic(name: &str, case: u64) -> Self {
        Self {
            state: fnv1a(name) ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0, "below(0)");
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_differ() {
        let mut a = TestRng::deterministic("t", 0);
        let mut b = TestRng::deterministic("t", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::deterministic("below", 0);
        for bound in [1u128, 2, 3, 97, 1 << 40] {
            for _ in 0..50 {
                assert!(r.below(bound) < bound);
            }
        }
    }
}
