//! `any::<T>()`: the default strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T> Any<T> {
    /// Const instance (used by `proptest::bool::ANY`).
    pub const NEW: Self = Any(PhantomData);
}

/// The canonical strategy for `T` over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_produces_both() {
        let (mut t, mut f) = (false, false);
        for case in 0..64 {
            let mut rng = TestRng::deterministic("anybool", case);
            if bool::arbitrary(&mut rng) {
                t = true;
            } else {
                f = true;
            }
        }
        assert!(t && f);
    }

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::deterministic("anyu64", 0);
        let a = u64::arbitrary(&mut rng);
        let b = u64::arbitrary(&mut rng);
        assert_ne!(a, b);
    }
}
