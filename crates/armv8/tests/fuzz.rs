//! Property-based robustness tests: arbitrary guest programs must never
//! panic the machine, corrupt hypervisor-owned state, or escape their
//! privilege level.
//!
//! These are the library-quality guarantees a hypervisor substrate
//! needs: everything a guest can do is either performed, trapped, or
//! faulted — never undefined behaviour in the *simulator*.

use neve_armv8::host::{harness_machine, SkipHyp};
use neve_armv8::isa::{Asm, Instr, Program, Special};
use neve_armv8::machine::{Machine, MachineConfig, StepOutcome};
use neve_armv8::ArchLevel;
use neve_sysreg::{RegId, SysReg};
use proptest::prelude::*;

/// Strategy: one arbitrary (but assemblable) instruction.
fn any_instr() -> impl Strategy<Value = Instr> {
    let reg = 0u8..32;
    let small = 0u64..0x1_0000;
    let addr = 0u64..0x4000_0000u64;
    let off = -64i64..64;
    prop_oneof![
        (reg.clone(), small.clone()).prop_map(|(r, v)| Instr::MovImm(r, v)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Instr::Mov(a, b)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(a, b, c)| Instr::Add(a, b, c)),
        (reg.clone(), reg.clone(), small.clone()).prop_map(|(a, b, v)| Instr::AddImm(a, b, v)),
        (reg.clone(), reg.clone(), small.clone()).prop_map(|(a, b, v)| Instr::SubImm(a, b, v)),
        (reg.clone(), reg.clone(), 0u8..64).prop_map(|(a, b, s)| Instr::LslImm(a, b, s)),
        (reg.clone(), reg.clone(), off.clone()).prop_map(|(a, b, o)| Instr::Ldr(a, b, o)),
        (reg.clone(), reg.clone(), off).prop_map(|(a, b, o)| Instr::Str(a, b, o)),
        any_sysreg().prop_flat_map({
            let reg = reg.clone();
            move |id| (reg.clone(), Just(id)).prop_map(|(r, id)| Instr::Mrs(r, id))
        }),
        any_sysreg().prop_flat_map({
            let reg = reg.clone();
            move |id| (reg.clone(), Just(id)).prop_map(|(r, id)| Instr::Msr(id, r))
        }),
        (0u16..0x100).prop_map(Instr::Hvc),
        (0u16..0x100).prop_map(Instr::Svc),
        (0u16..0x100).prop_map(Instr::Smc),
        Just(Instr::Eret),
        Just(Instr::Isb),
        Just(Instr::Dsb),
        Just(Instr::TlbiVmall),
        Just(Instr::Nop),
        (1u64..50).prop_map(Instr::Work),
        reg.clone()
            .prop_map(|r| Instr::MrsSpecial(r, Special::CurrentEl)),
        reg.prop_map(|r| Instr::MrsSpecial(r, Special::CntVct)),
        addr.prop_map(|_| Instr::Nop), // placeholder weight
    ]
}

/// Strategy: any modelled register name under any alias.
fn any_sysreg() -> impl Strategy<Value = RegId> {
    let regs = SysReg::all();
    let n = regs.len();
    (0usize..n, 0u8..3).prop_map(move |(i, kind)| {
        let r = regs[i];
        match kind {
            0 => RegId::Plain(r),
            1 => RegId::El12(r),
            _ => RegId::El02(r),
        }
    })
}

/// The shared harness from `neve_armv8::host` (promoted from this file).
fn machine_with(program: Program, arch: ArchLevel, hcr_bits: u64, el: u8) -> Machine {
    harness_machine(program, arch, hcr_bits, el)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary instruction streams never panic and never raise the
    /// core's privilege: software entering at EL0/EL1 stays at or below
    /// EL1 forever (the hypervisor boundary).
    #[test]
    fn guest_programs_cannot_escape_or_crash(
        instrs in proptest::collection::vec(any_instr(), 1..60),
        arch_sel in 0u8..4,
        hcr_sel in proptest::collection::vec(proptest::bool::ANY, 9),
        el in 0u8..2,
    ) {
        let arch = match arch_sel {
            0 => ArchLevel::V8_0,
            1 => ArchLevel::V8_1,
            2 => ArchLevel::V8_3,
            _ => ArchLevel::V8_4,
        };
        // Random subset of the interesting HCR_EL2 bits.
        let bit_positions = [0u32, 4, 26, 27, 30, 34, 42, 43, 45];
        let hcr: u64 = bit_positions
            .iter()
            .zip(&hcr_sel)
            .filter(|(_, on)| **on)
            .map(|(b, _)| 1u64 << b)
            .sum();
        let mut a = Asm::new(0x10_0000);
        for i in instrs {
            a.i(i);
        }
        a.i(Instr::Halt(1));
        let mut m = machine_with(a.assemble(), arch, hcr, el);
        let mut hyp = SkipHyp;
        for _ in 0..2_000 {
            match m.step(&mut hyp, 0) {
                StepOutcome::Executed => {
                    prop_assert!(m.core(0).pstate.el <= 1, "guest escaped to EL2");
                }
                _ => break,
            }
        }
        // The cycle counter only moves forward.
        prop_assert!(m.counter.cycles() < u64::MAX / 2);
    }

    /// Hardware HCR_EL2 is hypervisor-owned: no guest instruction
    /// sequence may change it (NEVE defers, NV traps, v8.0 faults — all
    /// paths leave the real register alone).
    #[test]
    fn guests_never_modify_hardware_hcr(
        instrs in proptest::collection::vec(any_instr(), 1..40),
        neve in proptest::bool::ANY,
    ) {
        use neve_sysreg::bits::hcr;
        let hcr_bits = hcr::VM | hcr::IMO | hcr::NV | hcr::NV1
            | if neve { hcr::NV2 } else { 0 };
        let mut a = Asm::new(0x10_0000);
        for i in instrs {
            a.i(i);
        }
        a.i(Instr::Halt(1));
        let mut m = machine_with(a.assemble(), ArchLevel::V8_4, hcr_bits, 1);
        if neve {
            let raw = neve_core::VncrEl2::enabled_at(0x0E00_0000).unwrap().raw();
            m.hyp_write(0, SysReg::VncrEl2, raw);
        }
        let before = m.core(0).regs.read(SysReg::HcrEl2);
        let mut hyp = SkipHyp;
        for _ in 0..1_500 {
            if m.step(&mut hyp, 0) != StepOutcome::Executed {
                break;
            }
        }
        prop_assert_eq!(m.core(0).regs.read(SysReg::HcrEl2), before);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The decode-once micro-op engine must be bit-for-bit lockstep
    /// with the reference interpreter on arbitrary valid programs:
    /// same step outcomes, same pc/EL/registers after every step, same
    /// retired-step and cycle counters at the end. Control flow is
    /// spliced in with randomized positions and targets so the block
    /// compiler's edge cases (forward, backward, self-branch, branch
    /// to entry, branch to the final instruction, branch past the end)
    /// all occur.
    #[test]
    fn uop_engine_is_lockstep_with_the_interpreter(
        instrs in proptest::collection::vec(any_instr(), 1..48),
        branches in proptest::collection::vec((0u8..5, 0u16..64, 0u16..64), 0..12),
        neve in proptest::bool::ANY,
    ) {
        use neve_armv8::uop::Engine;
        use neve_sysreg::bits::hcr;

        let base = 0x10_0000u64;
        let mut code = instrs;
        let len = code.len() as u64 + 1; // + trailing Halt
        for (kind, pos, tgt) in branches {
            let pos = pos as usize % code.len();
            // Target lands anywhere in the program, on the Halt, or
            // one slot past the end (a fetch failure both engines must
            // report identically).
            let t = base + 4 * (tgt as u64 % (len + 1));
            let reg = (tgt % 31) as u8;
            code[pos] = match kind {
                0 => Instr::B(t),
                1 => Instr::Bl(t),
                2 => Instr::Cbz(reg, t),
                3 => Instr::Cbnz(reg, t),
                _ => Instr::Ret,
            };
        }
        let mut a = Asm::new(base);
        for i in code {
            a.i(i);
        }
        a.i(Instr::Halt(1));
        let prog = a.assemble();

        let hcr_bits = hcr::VM | hcr::IMO | hcr::NV | hcr::NV1
            | if neve { hcr::NV2 } else { 0 };
        let mut fast = machine_with(prog.clone(), ArchLevel::V8_4, hcr_bits, 1);
        let mut oracle = machine_with(prog, ArchLevel::V8_4, hcr_bits, 1);
        oracle.set_engine(Engine::Interp);
        prop_assert_eq!(fast.active_engine(), Engine::Uop);
        prop_assert_eq!(oracle.active_engine(), Engine::Interp);
        if neve {
            let raw = neve_core::VncrEl2::enabled_at(0x0E00_0000).unwrap().raw();
            fast.hyp_write(0, SysReg::VncrEl2, raw);
            oracle.hyp_write(0, SysReg::VncrEl2, raw);
        }

        let mut h1 = SkipHyp;
        let mut h2 = SkipHyp;
        for step in 0..1_500 {
            let oa = fast.step(&mut h1, 0);
            let ob = oracle.step(&mut h2, 0);
            prop_assert_eq!(oa, ob, "outcome diverged at step {}", step);
            prop_assert_eq!(
                fast.core(0).pc, oracle.core(0).pc,
                "pc diverged at step {}", step
            );
            prop_assert_eq!(
                fast.core(0).pstate.el, oracle.core(0).pstate.el,
                "EL diverged at step {}", step
            );
            if oa != StepOutcome::Executed {
                break;
            }
        }
        for r in 0..31u8 {
            prop_assert_eq!(
                fast.core(0).gpr(r), oracle.core(0).gpr(r),
                "x{} diverged", r
            );
        }
        prop_assert_eq!(fast.steps_retired(), oracle.steps_retired());
        prop_assert_eq!(fast.counter.cycles(), oracle.counter.cycles());
    }
}

/// Strategy: a set of disjoint program layouts (gap before each
/// program in bytes, instruction count), plus a rotation for the load
/// order so the sorted insert in `Machine::load` sees every ordering.
fn disjoint_layouts() -> impl Strategy<Value = (Vec<(u64, usize)>, usize)> {
    (
        proptest::collection::vec((0u64..0x2000, 1usize..24), 1..6),
        0usize..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The hinted binary-search fetch must agree with the naive linear
    /// scan for every probe address, on any overlap-free layout and
    /// any load order (the fast path is pure mechanism: it can never
    /// change *what* a fetch returns).
    #[test]
    fn indexed_fetch_agrees_with_linear_scan(
        (layouts, rot) in disjoint_layouts(),
    ) {
        use std::sync::Arc;

        // Materialize disjoint programs; instruction i of program p
        // carries a unique immediate so any mix-up is visible.
        let mut programs = Vec::new();
        let mut base = 0x1000u64;
        for (p, (gap, len)) in layouts.into_iter().enumerate() {
            base += gap & !3; // keep the 4-byte stride alignment
            let code: Vec<Instr> = (0..len)
                .map(|i| Instr::MovImm(0, (p as u64) << 32 | i as u64))
                .collect();
            let prog = Program { base, code: Arc::from(code.as_slice()) };
            base = prog.end();
            programs.push(prog);
        }

        let mut m = Machine::new(MachineConfig {
            arch: ArchLevel::V8_3,
            ncpus: 1,
            mem_size: 1 << 20,
            cost: Default::default(),
        });
        let n = programs.len();
        for i in 0..n {
            m.load(programs[(i + rot) % n].clone());
        }

        // Probe boundaries, interiors, gaps, and misaligned addresses,
        // in an interleaved order that defeats the per-core hint.
        let mut probes = Vec::new();
        for p in &programs {
            probes.extend([
                p.base.wrapping_sub(4),
                p.base,
                p.base + 4 * ((p.code.len() as u64) / 2),
                p.end() - 4,
                p.end(),
                p.base + 1, // misaligned
            ]);
        }
        probes.push(0);
        probes.push(!3u64); // u64::MAX aligned down to 4
        for round in 0..2 {
            for (k, &pc) in probes.iter().enumerate() {
                // Odd passes walk the probes backwards so consecutive
                // fetches cross program boundaries.
                let pc = if round == 1 { probes[probes.len() - 1 - k] } else { pc };
                let reference = programs.iter().find_map(|p| p.fetch(pc));
                prop_assert_eq!(m.peek(pc), reference, "pc {:#x}", pc);
            }
        }
    }
}
