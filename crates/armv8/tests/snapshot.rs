//! Snapshot/restore correctness and performance.
//!
//! The fuzzing campaign's whole soundness story rests on two facts this
//! suite establishes:
//!
//! 1. **Round-trip fidelity** — a restored machine is *bit-identical* to
//!    the captured one for every architectural observer, under both
//!    execution engines: replaying the same case after a restore
//!    produces the same trajectory (outcomes, pc, EL), the same final
//!    registers, the same cycle count, the same memory.
//! 2. **Restore is cheap** — rewinding through the copy-on-write undo
//!    log costs time proportional to the dirtied pages, not to machine
//!    size; measured ≥100x faster than rebuilding the testbed.
//!
//! Plus the campaign-shape property: a restore after a fault-injected,
//! table-corrupting run yields a *clean* machine.

use neve_armv8::fault::{FaultPlan, InjectedFault, Injection};
use neve_armv8::fuzzgen;
use neve_armv8::host::{
    boot_harness, harness_machine, install_stage2, EmulHyp, SCRATCH_BASE, VNCR_PAGE,
};
use neve_armv8::isa::{Asm, Instr};
use neve_armv8::machine::{Machine, StepOutcome};
use neve_armv8::uop::Engine;
use neve_armv8::ArchLevel;
use neve_sysreg::bits::hcr;
use neve_sysreg::SysReg;
use proptest::prelude::*;

const PROGRAM_BASE: u64 = neve_armv8::host::PROGRAM_BASE;

fn nv_hcr(neve: bool) -> u64 {
    hcr::VM | hcr::IMO | hcr::NV | hcr::NV1 | if neve { hcr::NV2 } else { 0 }
}

/// Builds the campaign-standard testbed: a seeded generated program on
/// NEVE hardware with Stage-2 installed, the deferred-access page
/// enabled, and the guest hypervisor booted (the snapshot point a
/// campaign uses — restore replaces construction *and* boot).
fn testbed(seed: u64, len: usize, engine: Engine) -> Machine {
    let mut a = Asm::new(PROGRAM_BASE);
    for i in fuzzgen::generate(seed, len) {
        a.i(i);
    }
    a.i(Instr::Halt(1));
    let mut m = harness_machine(a.assemble(), ArchLevel::V8_4, nv_hcr(true), 1);
    install_stage2(&mut m, 0, 7);
    let raw = neve_core::VncrEl2::enabled_at(VNCR_PAGE).unwrap().raw();
    m.hyp_write(0, SysReg::VncrEl2, raw);
    boot_harness(&mut m, 0);
    m.set_engine(engine);
    m
}

/// One observation leg: runs `n` steps under a fresh emulating host and
/// returns everything architecturally visible about the trajectory.
#[allow(clippy::type_complexity)]
fn observe(m: &mut Machine, n: usize) -> (Vec<(StepOutcome, u64, u8)>, [u64; 31], u64, u64, u64) {
    let mut h = EmulHyp::new();
    let mut traj = Vec::with_capacity(n);
    for _ in 0..n {
        let out = m.step(&mut h, 0);
        traj.push((out, m.core(0).pc, m.core(0).pstate.el));
        if out != StepOutcome::Executed {
            break;
        }
    }
    let mut gprs = [0u64; 31];
    for (r, g) in gprs.iter_mut().enumerate() {
        *g = m.core(0).gpr(r as u8);
    }
    let mem_probe = (0..32)
        .map(|i| m.mem.read_u64(SCRATCH_BASE + 8 * i))
        .fold(0u64, |acc, v| {
            acc.rotate_left(7) ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        });
    (traj, gprs, m.counter.cycles(), m.steps_retired(), mem_probe)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// snapshot → run → restore → run again is bit-identical, under
    /// both the micro-op engine and the reference interpreter.
    #[test]
    fn snapshot_round_trip_is_bit_identical_under_both_engines(
        seed in 0u64..1_000_000,
        len in 8usize..48,
        engine_sel in proptest::bool::ANY,
    ) {
        let engine = if engine_sel { Engine::Uop } else { Engine::Interp };
        let mut m = testbed(seed, len, engine);
        prop_assert_eq!(m.active_engine(), engine);

        // A short prelude so the snapshot point is mid-execution, not
        // the pristine reset state.
        let mut h = EmulHyp::new();
        for _ in 0..10 {
            if m.step(&mut h, 0) != StepOutcome::Executed {
                break;
            }
        }

        let snap = m.snapshot();
        let baseline = observe(&mut m, 400);

        m.restore(&snap);
        prop_assert_eq!(m.active_engine(), engine, "restore changed the engine");
        let replay = observe(&mut m, 400);
        prop_assert_eq!(&baseline, &replay, "first replay diverged");

        // The undo window stays open: restore again, replay again.
        m.restore(&snap);
        let replay2 = observe(&mut m, 400);
        prop_assert_eq!(&baseline, &replay2, "second replay diverged");
    }

    /// The two engines agree with each other *through* a snapshot
    /// boundary: restoring one engine's machine and replaying under it
    /// matches a fresh machine driven by the other engine.
    #[test]
    fn restored_machine_stays_lockstep_with_other_engine(
        seed in 0u64..1_000_000,
        len in 8usize..40,
    ) {
        let mut fast = testbed(seed, len, Engine::Uop);
        let mut oracle = testbed(seed, len, Engine::Interp);

        // Disturb the fast machine, then rewind it; the oracle never
        // moved. Both now run the case from the same point.
        let snap = fast.snapshot();
        let _ = observe(&mut fast, 100);
        fast.restore(&snap);

        let a = observe(&mut fast, 400);
        let b = observe(&mut oracle, 400);
        prop_assert_eq!(a, b, "engines diverged across the snapshot boundary");
    }
}

/// A fault-injected run that corrupts the live Stage-2 tables rewinds
/// to a clean machine: the corrupted descriptor is restored and a rerun
/// matches the never-corrupted baseline exactly.
#[test]
fn restore_after_fault_plan_corruption_yields_clean_machine() {
    let mut m = testbed(0xfeed, 24, Engine::Interp);
    let root = neve_sysreg::bits::vttbr::baddr(m.core(0).regs.read(SysReg::VttbrEl2));
    let descriptor_before = m.mem.read_u64(root);

    let snap = m.snapshot();
    let baseline = observe(&mut m, 300);
    m.restore(&snap);

    // param 1024: slot 1024 % 512 = 0 (the one descriptor covering all
    // of this testbed's RAM), garbage flavour 1024 % 3 = 1.
    m.attach_fault_plan(FaultPlan::new(vec![Injection {
        step: m.steps_retired() + 5,
        fault: InjectedFault::CorruptShadowPte,
        param: 1024,
    }]));
    let _ = observe(&mut m, 300);
    assert_eq!(
        m.fault_plan().map(|p| p.applied()),
        Some(1),
        "the injection never fired"
    );
    assert_ne!(
        m.mem.read_u64(root),
        descriptor_before,
        "the corruption was not observable"
    );

    m.restore(&snap);
    assert_eq!(m.mem.read_u64(root), descriptor_before);
    assert!(m.fault_plan().is_none(), "restore must detach the plan");
    let rerun = observe(&mut m, 300);
    assert_eq!(baseline, rerun, "post-corruption restore was not clean");
}

/// Restoring must be at least two orders of magnitude faster than
/// rebuilding the testbed from scratch — this is what makes a
/// restore-per-case fuzzing loop viable. Best-of-N on both sides to
/// shield against scheduler noise; a restore is only a few µs, so one
/// preemption by a sibling test inflates a sample by orders of
/// magnitude — the whole measurement retries before the test fails.
#[test]
fn restore_is_100x_faster_than_testbed_rebuild() {
    use std::hint::black_box;
    use std::time::Instant;

    let measure = || {
        let rebuild = || black_box(testbed(42, 32, Engine::Uop));
        let mut rebuild_best = std::time::Duration::MAX;
        for _ in 0..8 {
            let t = Instant::now();
            let m = rebuild();
            rebuild_best = rebuild_best.min(t.elapsed());
            drop(m);
        }

        let mut m = testbed(42, 32, Engine::Uop);
        let snap = m.snapshot();
        let mut restore_best = std::time::Duration::MAX;
        for _ in 0..32 {
            let _ = observe(&mut m, 400); // dirty some pages
            let t = Instant::now();
            m.restore(black_box(&snap));
            restore_best = restore_best.min(t.elapsed());
        }
        (restore_best, rebuild_best)
    };

    let mut last = measure();
    for _ in 0..2 {
        if last.0 * 100 <= last.1 {
            break;
        }
        last = measure();
    }
    let (restore_best, rebuild_best) = last;
    assert!(
        restore_best * 100 <= rebuild_best,
        "restore {restore_best:?} not 100x faster than rebuild {rebuild_best:?}"
    );
}

/// Restore rewinds exactly the dirtied pages and leaves the window
/// open with an empty dirty set.
#[test]
fn restore_cost_tracks_dirty_pages() {
    let mut m = testbed(7, 16, Engine::Uop);
    let _snap_guard = m.snapshot();
    assert_eq!(m.mem.dirty_pages(), 0);
    m.mem.write_u64(SCRATCH_BASE, 1);
    m.mem.write_u64(SCRATCH_BASE + 0x1000, 2);
    m.mem.write_u64(SCRATCH_BASE + 0x1008, 3); // same page as above
    assert_eq!(m.mem.dirty_pages(), 2);
    m.restore(&_snap_guard);
    assert_eq!(m.mem.dirty_pages(), 0, "window must reopen empty");
    assert_eq!(m.mem.read_u64(SCRATCH_BASE), 0);
}

/// Restoring a snapshot that is no longer the machine's most recent one
/// must panic rather than silently mix two baselines.
#[test]
#[should_panic(expected = "stale snapshot")]
fn restoring_a_stale_snapshot_panics() {
    let mut m = testbed(1, 8, Engine::Uop);
    let old = m.snapshot();
    let _new = m.snapshot();
    m.restore(&old);
}
