//! The simulated machine: cores, memory system, interrupt controller,
//! timers, cycle accounting and the run loop.
//!
//! Control-flow model: guest software (anything at EL0/EL1, including
//! deprivileged guest hypervisors) is interpreted one instruction at a
//! time by [`Machine::step`]. Exceptions taken **to EL2** latch the
//! syndrome registers and synchronously invoke the native-Rust
//! [`Hypervisor`] (the host hypervisor), after which the machine performs
//! the `eret` the handler prepared in `ELR_EL2`/`SPSR_EL2`. Exceptions
//! taken **to EL1** are pure state mutation — the interpreter continues
//! at the EL1 vector. Both rules together give the paper's nested
//! reflection (Section 4) without coroutines: a nested VM's trap enters
//! the host, the host *emulates an exception into virtual EL2* by
//! adjusting EL1 state, and the interpreter finds itself running the
//! guest hypervisor's vector code.

use crate::check::{Checker, Violation, ViolationKind};
use crate::cpu::CoreState;
use crate::fault::{FaultPlan, InjectedFault, Injection, VncrTamper};
use crate::isa::{Instr, Program, Special};
use crate::pstate::Pstate;
use crate::trace::{Trace, TraceEvent};
use crate::uop::{self, CompiledProgram, Engine, Uop};
use crate::ArchLevel;
use neve_core::{Disposition, NeveEngine};
use neve_cycles::{CostModel, CostTable, CycleCounter, Event, Phase, Rank, TrapKind, Waker, Wheel};
use neve_gic::Gic;
use neve_memsim::{walk, Access, PageTable, PhysMem, Tlb, TlbKey, TlbSnapshot};
use neve_sysreg::bits::{esr, hcr, vttbr};
use neve_sysreg::classify::{neve_class, NeveClass};
use neve_sysreg::{RegId, SysReg};
use neve_vtimer::Timers;
use std::cell::Cell;
use std::sync::Arc;

/// Machine construction parameters.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Architecture revision of the hardware.
    pub arch: ArchLevel,
    /// Number of CPU cores.
    pub ncpus: usize,
    /// Physical memory size in bytes.
    pub mem_size: u64,
    /// The cycle cost model.
    pub cost: CostModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            arch: ArchLevel::V8_4,
            ncpus: 1,
            mem_size: 1 << 32,
            cost: CostModel::default(),
        }
    }
}

/// A trapped MMIO access awaiting emulation (the simulator's equivalent
/// of the ISS "instruction syndrome valid" information KVM decodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmioRequest {
    /// True for a store.
    pub write: bool,
    /// GPR that supplies (store) or receives (load) the data.
    pub reg: u8,
    /// Store data (0 for loads).
    pub value: u64,
    /// Faulting intermediate physical address.
    pub ipa: u64,
}

/// What a single [`Machine::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired (possibly after trapping to the hypervisor
    /// and returning).
    Executed,
    /// The core is waiting for an interrupt.
    Wfi,
    /// The core executed [`Instr::Halt`].
    Halted(u16),
    /// The program counter points at no loaded program: a simulator
    /// usage error (or a crashed guest that jumped into the weeds).
    FetchFailure(u64),
}

/// Details of the exception that entered EL2, for hypervisor handlers.
#[derive(Debug, Clone, Copy)]
pub struct ExitInfo {
    /// `ESR_EL2` at entry.
    pub esr: u64,
    /// `ELR_EL2` at entry (preferred return address).
    pub elr: u64,
    /// `FAR_EL2` at entry.
    pub far: u64,
    /// `HPFAR_EL2` at entry (faulting IPA page).
    pub hpfar: u64,
}

/// The native-software interface: the host hypervisor running in EL2.
pub trait Hypervisor {
    /// A synchronous exception reached EL2. Syndrome registers are
    /// latched; the handler prepares `ELR_EL2`/`SPSR_EL2` (and any other
    /// state) for the `eret` the machine performs on return.
    fn handle_sync(&mut self, m: &mut Machine, cpu: usize, info: ExitInfo);

    /// A physical interrupt routed to EL2 (`HCR_EL2.IMO`).
    fn handle_irq(&mut self, m: &mut Machine, cpu: usize);
}

/// The machine.
#[derive(Debug)]
pub struct Machine {
    /// Construction parameters.
    pub cfg: MachineConfig,
    /// Physical memory.
    pub mem: PhysMem,
    /// Interrupt controller.
    pub gic: Gic,
    /// Generic timers.
    pub timers: Timers,
    /// Translation cache.
    pub tlb: Tlb,
    /// Cycle and trap accounting.
    pub counter: CycleCounter,
    cores: Vec<CoreState>,
    /// Loaded programs, kept sorted by base address (the ranges are
    /// disjoint — [`Machine::load`] asserts it — so instruction fetch
    /// binary-searches this instead of scanning).
    programs: Vec<Program>,
    /// Per-core index of the program the core last fetched from.
    /// Straight-line code hits this without the binary search. Interior
    /// mutability keeps [`Machine::peek`] (and fetch inside `step`)
    /// `&self`; a `Cell` is `Send`, so machines still cross threads.
    /// Pure performance state: it never changes *what* a fetch returns.
    fetch_hints: Vec<Cell<usize>>,
    /// The ARM half of `cfg.cost` resolved to a flat per-event array;
    /// rebuilt whenever the model's fingerprint changes (see
    /// [`Machine::refresh_cost_table`]).
    cost_table: CostTable,
    pending_mmio: Vec<Option<MmioRequest>>,
    /// Optional execution trace (attach with [`Machine::attach_trace`]).
    pub trace: Option<Trace>,
    /// Machine steps retired (across all CPUs); the clock fault
    /// injections are scheduled against.
    steps: u64,
    /// Optional deterministic injection schedule. `None` (the default)
    /// leaves every execution path untouched.
    fault_plan: Option<FaultPlan>,
    /// Optional invariant checker (attach with
    /// [`Machine::attach_checker`]). Like the trace, pure observability:
    /// never charges cycles, and when detached every hook is one test.
    checker: Option<Checker>,
    /// NEVE deferred accesses performed (would-be traps rewritten into
    /// access-page memory operations). Pure count, for the oracle's
    /// trap-count algebra.
    vncr_deferrals: u64,
    /// System-register traps taken to EL2 whose access *full* NEVE
    /// hardware would have deferred to the access page. On an ARMv8.3
    /// machine this counts exactly the traps NEVE eliminates (paper
    /// Table 7's reduction); the oracle asserts the algebra.
    deferrable_sysreg_traps: u64,
    /// Which engine [`Machine::step`] dispatches through.
    engine: Engine,
    /// Pre-decoded micro-op programs, index-parallel to `programs`
    /// (same sorted order, so `fetch_hints` serve both).
    compiled: Vec<CompiledProgram>,
    /// Per-core cached "no interrupt deliverable" verdicts for the
    /// micro-op engine's poll elision (see [`Machine::quiet_valid`]).
    quiet: Vec<PollQuiet>,
    /// Monotonic snapshot stamp: [`Machine::snapshot`] bumps it, and
    /// [`Machine::restore`] refuses a snapshot from a different stamp —
    /// memory keeps only one copy-on-write window, so only the *latest*
    /// snapshot is restorable.
    snap_epoch: u64,
    /// The discrete-event wheel: exact wake-ups for parked cores.
    wheel: Wheel,
    /// Per-core park state: `Some(waker)` while the core sits in WFI
    /// with the run loop skipping it entirely (see [`Machine::park`]).
    parked: Vec<Option<Waker>>,
    /// The cpus a wheel-driven run loop should step, sorted ascending.
    /// Exactly the complement of `parked`; maintained incrementally so
    /// a loop over it costs nothing per parked core.
    runnable: Vec<usize>,
    /// The `(timers, gic)` epoch pair last examined by
    /// [`Machine::service_wakeups`]; an unchanged pair proves no device
    /// mutation since, so the rescan of parked cores is skipped.
    serviced_epochs: (u64, u64),
}

/// Everything [`Machine::restore`] needs to rewind the machine to the
/// moment [`Machine::snapshot`] was called: architectural core state,
/// devices, cycle accounting and the loaded programs. Guest memory is
/// *not* copied here — it rewinds through the copy-on-write undo log in
/// [`PhysMem`], so taking a snapshot is O(1) in memory size and restoring
/// is proportional to the pages dirtied since.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    epoch: u64,
    cores: Vec<CoreState>,
    counter: CycleCounter,
    tlb: TlbSnapshot,
    gic: Gic,
    timers: Timers,
    steps: u64,
    vncr_deferrals: u64,
    deferrable_sysreg_traps: u64,
    pending_mmio: Vec<Option<MmioRequest>>,
    programs: Vec<Program>,
    wheel: Wheel,
    parked: Vec<Option<Waker>>,
    runnable: Vec<usize>,
    serviced_epochs: (u64, u64),
}

/// A cached "the interrupt poll would find nothing" verdict, valid
/// while every input the poll reads is provably unchanged: the timer
/// and GIC mutation epochs, the polled core's exception level,
/// interrupt mask and `HCR_EL2`, and the cycle counter staying inside
/// `[since, until)` — `until` being the earliest armed timer deadline
/// ([`Timers::next_fire_at`]). `since` additionally catches a counter
/// reset between runs, which would re-open wrapped virtual-timer
/// windows.
#[derive(Debug, Clone, Copy, Default)]
struct PollQuiet {
    valid: bool,
    since: u64,
    until: u64,
    timers_epoch: u64,
    gic_epoch: u64,
    el: u8,
    irq_masked: bool,
    dist_enabled: bool,
    hcr: u64,
}

/// Internal: what a system-register access decision resolved to.
enum RouteOutcome {
    Done(u64),
    TrapEl2(TrapKind, u64),
    UndefEl1,
}

impl Machine {
    /// Builds a machine per `cfg`; cores start halted at EL1 with pc 0 —
    /// the embedder (hypervisor harness) sets them up.
    pub fn new(cfg: MachineConfig) -> Self {
        let ncpus = cfg.ncpus;
        Self {
            mem: PhysMem::new(cfg.mem_size),
            gic: Gic::new(ncpus),
            timers: Timers::new(ncpus),
            tlb: Tlb::default(),
            counter: CycleCounter::new(),
            cores: (0..ncpus).map(|_| CoreState::new()).collect(),
            programs: Vec::new(),
            fetch_hints: (0..ncpus).map(|_| Cell::new(0)).collect(),
            cost_table: CostTable::arm(&cfg.cost),
            pending_mmio: vec![None; ncpus],
            trace: None,
            steps: 0,
            fault_plan: None,
            checker: None,
            vncr_deferrals: 0,
            deferrable_sysreg_traps: 0,
            engine: Engine::default(),
            compiled: Vec::new(),
            quiet: vec![PollQuiet::default(); ncpus],
            snap_epoch: 0,
            wheel: Wheel::new(),
            parked: vec![None; ncpus],
            runnable: (0..ncpus).collect(),
            serviced_epochs: (0, 0),
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Snapshot / restore.
    // ------------------------------------------------------------------

    /// Captures the machine's architectural state and opens the
    /// copy-on-write window in guest memory.
    ///
    /// The snapshot owns clones of the core register files, PSTATE,
    /// system registers, GIC, timers, TLB contents, cycle/trap
    /// accounting, oracle counters, pending MMIO and the loaded program
    /// list (cheap `Arc` clones). Memory itself is not copied: writes
    /// after this call log their pre-image pages, so
    /// [`Machine::restore`] costs time proportional to the dirty set.
    ///
    /// Only the most recent snapshot is restorable (memory keeps a
    /// single undo window); taking a new snapshot invalidates older
    /// handles, which [`Machine::restore`] enforces.
    pub fn snapshot(&mut self) -> MachineSnapshot {
        self.snap_epoch += 1;
        self.mem.begin_snapshot();
        let tlb = self.tlb.begin_snapshot();
        MachineSnapshot {
            epoch: self.snap_epoch,
            cores: self.cores.clone(),
            counter: self.counter.clone(),
            tlb,
            gic: self.gic.clone(),
            timers: self.timers.clone(),
            steps: self.steps,
            vncr_deferrals: self.vncr_deferrals,
            deferrable_sysreg_traps: self.deferrable_sysreg_traps,
            pending_mmio: self.pending_mmio.clone(),
            programs: self.programs.clone(),
            wheel: self.wheel.clone(),
            parked: self.parked.clone(),
            runnable: self.runnable.clone(),
            serviced_epochs: self.serviced_epochs,
        }
    }

    /// Rewinds the machine to `snap`'s capture point. The copy-on-write
    /// window stays open, so the same snapshot can be restored again —
    /// the shape of a fuzzing loop (snapshot once, restore per case).
    ///
    /// A restored machine is bit-identical to the captured one for every
    /// architectural observer: registers, PSTATE, memory, devices, TLB
    /// contents (restored, not flushed, so post-restore walk charges
    /// replay exactly), cycle accounting and step counts. Pure
    /// performance state — fetch hints and the micro-op engine's cached
    /// quiet verdicts — is invalidated instead, which an engine can
    /// never observe architecturally. Observers (trace, fault plan,
    /// checker) are *detached*: they record history, and the history
    /// just rewound — a restore after a fault-corrupted run yields a
    /// clean machine.
    ///
    /// # Panics
    ///
    /// Panics if `snap` is not the machine's most recent snapshot.
    pub fn restore(&mut self, snap: &MachineSnapshot) {
        assert_eq!(
            snap.epoch, self.snap_epoch,
            "restore of a stale snapshot (memory keeps one undo window)"
        );
        self.mem.restore_snapshot();
        self.tlb.restore_snapshot(&snap.tlb);
        self.cores.clone_from(&snap.cores);
        self.counter.clone_from(&snap.counter);
        self.gic.clone_from(&snap.gic);
        self.timers.clone_from(&snap.timers);
        self.steps = snap.steps;
        self.vncr_deferrals = snap.vncr_deferrals;
        self.deferrable_sysreg_traps = snap.deferrable_sysreg_traps;
        self.pending_mmio.clone_from(&snap.pending_mmio);
        // Scheduler state rewinds with everything else: a wheel event
        // posted after the snapshot would otherwise fire against the
        // restored (earlier) clock — the stale-event use-after-restore
        // bug — and a core parked after the snapshot would stay
        // invisibly skipped forever.
        self.wheel.clone_from(&snap.wheel);
        self.parked.clone_from(&snap.parked);
        self.runnable.clone_from(&snap.runnable);
        self.serviced_epochs = snap.serviced_epochs;
        // Observers are history, and the history just rewound.
        self.trace = None;
        self.fault_plan = None;
        self.checker = None;
        // Pure performance state: never architecturally observable, so
        // invalidating is always safe (and cheaper than reasoning about
        // whether the cached facts survived the rewind).
        for h in &self.fetch_hints {
            h.set(0);
        }
        for q in &mut self.quiet {
            *q = PollQuiet::default();
        }
        // Programs changed since the snapshot (a fuzz case swapped one
        // in): put the captured list back and rebuild the micro-op
        // images. The common restore (same programs) skips the rebuild.
        let same = self.programs.len() == snap.programs.len()
            && self
                .programs
                .iter()
                .zip(&snap.programs)
                .all(|(a, b)| a.base == b.base && Arc::ptr_eq(&a.code, &b.code));
        if !same {
            self.programs = snap.programs.clone();
            self.compiled = self
                .programs
                .iter()
                .map(|p| uop::compile(p, &self.cost_table))
                .collect();
        }
    }

    // ------------------------------------------------------------------
    // Discrete-event scheduling.
    //
    // The wheel-driven run loop protocol:
    //
    //   1. Step only the cpus in `runnable()`.
    //   2. A step returning `Wfi` -> `park(hyp, cpu)`; parked cores
    //      drop out of `runnable` and cost zero host work.
    //   3. After each step, `service_wakeups(hyp)` — O(1) when nothing
    //      happened: it compares two epoch words and peeks the wheel.
    //   4. When `runnable()` is empty, `advance_to_wake(hyp)` jumps the
    //      clock (as `Phase::Idle` cycles) to the earliest pending
    //      event; `false` means no event is armed — a real deadlock.
    //
    // Everything here is deterministic: wake order is the wheel's
    // `(time, rank, cpu, seq)` total order, and the epoch rescan walks
    // cpus in index order. The scheduler only decides *when* a core is
    // stepped; the step itself charges exactly what it always charged,
    // which is why the recorded microbenchmark matrices are
    // bit-identical under it.
    // ------------------------------------------------------------------

    /// Parks `cpu` after a step returned [`StepOutcome::Wfi`]: the core
    /// leaves the runnable set and registers a [`Waker`] (its earliest
    /// armed timer deadline plus the device epochs it observed).
    ///
    /// Polls interrupts first — between the WFI step and this call
    /// another core may have made an interrupt deliverable, and parking
    /// on top of it would sleep through a wake that already happened.
    /// Returns `false` (not parked) in that case.
    pub fn park(&mut self, hyp: &mut dyn Hypervisor, cpu: usize) -> bool {
        if self.parked[cpu].is_some() {
            return true;
        }
        if self.poll_interrupts(cpu, hyp) || !self.cores[cpu].wfi {
            return false;
        }
        let now = self.counter.cycles();
        let wake_at = self.timers.next_fire_at(cpu, now);
        self.parked[cpu] = Some(Waker {
            wake_at,
            timers_epoch: self.timers.epoch_of(cpu),
            gic_epoch: self.gic.epoch_of(cpu),
        });
        if wake_at != u64::MAX {
            self.wheel.post(wake_at, Rank::Timer, cpu);
        }
        self.runnable.retain(|&c| c != cpu);
        true
    }

    /// The cpus a wheel-driven run loop should step: every core not
    /// parked, sorted ascending.
    pub fn runnable(&self) -> &[usize] {
        &self.runnable
    }

    /// True while `cpu` is parked (skipped by wheel-driven run loops).
    pub fn is_parked(&self, cpu: usize) -> bool {
        self.parked[cpu].is_some()
    }

    /// Wakes `cpu` out of WFI unconditionally (PSCI `CPU_ON`, explicit
    /// kicks): clears the wait flag and returns the core to the
    /// runnable set. Any wheel event it left behind becomes stale and
    /// is dropped when popped.
    pub fn kick(&mut self, cpu: usize) {
        self.cores[cpu].wfi = false;
        self.unpark(cpu);
    }

    fn unpark(&mut self, cpu: usize) {
        if self.parked[cpu].take().is_some() {
            if let Err(i) = self.runnable.binary_search(&cpu) {
                self.runnable.insert(i, cpu);
            }
        }
    }

    /// Re-polls a parked core. Unparks (returning `true`) when the poll
    /// delivers or the wait flag was cleared behind its back; otherwise
    /// refreshes the waker in place — the deadline may have moved — and
    /// leaves the core parked.
    fn try_unpark(&mut self, hyp: &mut dyn Hypervisor, cpu: usize) -> bool {
        if self.poll_interrupts(cpu, hyp) || !self.cores[cpu].wfi {
            self.unpark(cpu);
            return true;
        }
        let now = self.counter.cycles();
        let wake_at = self.timers.next_fire_at(cpu, now);
        let refreshed = Waker {
            wake_at,
            timers_epoch: self.timers.epoch_of(cpu),
            gic_epoch: self.gic.epoch_of(cpu),
        };
        let prev = self.parked[cpu].replace(refreshed);
        if prev.is_none_or(|p| p.wake_at != wake_at) && wake_at != u64::MAX {
            self.wheel.post(wake_at, Rank::Timer, cpu);
        }
        false
    }

    /// Delivers every wake-up that is due: pops due wheel events (exact
    /// timer deadlines) in `(time, rank, cpu, seq)` order, and — only
    /// when a device epoch moved since the last call — re-polls the
    /// parked cores whose *own* wake inputs changed (an SGI targeting
    /// them, their timer bank re-armed, their SPI retargeted). Returns
    /// true if any core rejoined the runnable set.
    ///
    /// Two cost tiers keep this affordable after every step: nothing
    /// happened is O(1) (one epoch-pair compare), and a world switch on
    /// a running core — which churns its own timers and list registers
    /// every trap — costs one cached-u64 compare per parked core, never
    /// a re-poll. Only a change that actually touches a parked core's
    /// per-CPU epochs reaches `try_unpark`.
    pub fn service_wakeups(&mut self, hyp: &mut dyn Hypervisor) -> bool {
        let mut woke = false;
        let now = self.counter.cycles();
        while let Some(ev) = self.wheel.pop_due(now) {
            // Events for cores that already woke some other way are
            // stale; the park state is authoritative.
            if self.parked[ev.cpu].is_some() {
                woke |= self.try_unpark(hyp, ev.cpu);
            }
        }
        let epochs = (self.timers.epoch(), self.gic.epoch());
        if epochs != self.serviced_epochs {
            self.serviced_epochs = epochs;
            for cpu in 0..self.parked.len() {
                let Some(w) = self.parked[cpu] else { continue };
                if w.timers_epoch != self.timers.epoch_of(cpu)
                    || w.gic_epoch != self.gic.epoch_of(cpu)
                {
                    woke |= self.try_unpark(hyp, cpu);
                }
            }
        }
        woke
    }

    /// With every core parked, jumps the clock to the next pending
    /// event and delivers it. The skipped window is charged as
    /// [`Phase::Idle`] cycles: simulated time passes, host work does
    /// not. Returns `false` when no event can ever wake the machine
    /// (every core in WFI with nothing armed — a guest deadlock).
    pub fn advance_to_wake(&mut self, hyp: &mut dyn Hypervisor) -> bool {
        loop {
            let Some(ev) = self.wheel.pop() else {
                return false;
            };
            if self.parked[ev.cpu].is_none() {
                continue; // stale
            }
            let now = self.counter.cycles();
            if ev.time > now {
                let prev = self.counter.set_phase(Phase::Idle);
                self.counter.advance(ev.time - now);
                self.counter.set_phase(prev);
            }
            if self.try_unpark(hyp, ev.cpu) {
                return true;
            }
            // Spurious (e.g. the timer fired but the core keeps IRQs
            // masked): the waker was refreshed, keep draining.
        }
    }

    /// Selects the execution engine for subsequent steps.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The selected execution engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The pre-decoded micro-op programs (index-parallel to the loaded
    /// programs; test/bench introspection).
    pub fn compiled_programs(&self) -> &[CompiledProgram] {
        &self.compiled
    }

    /// Re-resolves the precomputed cost table if `cfg.cost` changed
    /// since it was built ([`CostModel::fingerprint`] comparison).
    /// Harnesses call this at run boundaries, so per-step charges can
    /// index the flat table instead of re-matching the model — with
    /// identical results, since the table is built by evaluating
    /// [`CostModel::arm_cost`] over every event.
    pub fn refresh_cost_table(&mut self) {
        if !self.cost_table.matches(&self.cfg.cost) {
            self.cost_table = CostTable::arm(&self.cfg.cost);
            // The micro-op programs bake cost-table values in at decode
            // time; a model change invalidates every compiled program.
            for (i, p) in self.programs.iter().enumerate() {
                self.compiled[i] = uop::compile(p, &self.cost_table);
            }
        }
    }

    /// Attaches an execution trace keeping the last `capacity` events.
    pub fn attach_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// Attaches a deterministic fault-injection schedule. Injections
    /// fire from the *next* step onward; attach before running.
    pub fn attach_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// The attached fault plan, if any (inspect `applied()` after a
    /// run to see how many injections actually fired).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Machine steps retired so far, the clock injections fire against.
    pub fn steps_retired(&self) -> u64 {
        self.steps
    }

    /// Attaches an invariant checker (checked mode). From now on every
    /// step validates the structural invariants and every EL transition
    /// is checked for legality; violations accumulate in the checker.
    pub fn attach_checker(&mut self) {
        self.checker = Some(Checker::new());
    }

    /// The attached checker, if any.
    pub fn checker(&self) -> Option<&Checker> {
        self.checker.as_ref()
    }

    /// Detaches and returns the checker with its findings.
    pub fn take_checker(&mut self) -> Option<Checker> {
        self.checker.take()
    }

    /// NEVE deferred accesses performed so far (oracle counter).
    pub fn vncr_deferrals(&self) -> u64 {
        self.vncr_deferrals
    }

    /// Sysreg traps taken whose access full NEVE hardware would defer
    /// (oracle counter; counts NEVE's eliminated traps on ARMv8.3).
    pub fn deferrable_sysreg_traps(&self) -> u64 {
        self.deferrable_sysreg_traps
    }

    /// Records a checker violation at the current step (no-op when no
    /// checker is attached).
    fn check_violation(&mut self, cpu: usize, kind: ViolationKind, detail: String) {
        if let Some(c) = &mut self.checker {
            c.record(Violation {
                step: self.steps,
                cpu,
                kind,
                detail,
            });
        }
    }

    /// Loads a program into the flat interpreter address space.
    ///
    /// # Panics
    ///
    /// Panics if it overlaps an already-loaded program (all guest images
    /// must occupy disjoint virtual ranges; see DESIGN.md).
    pub fn load(&mut self, prog: Program) {
        for p in &self.programs {
            let disjoint = prog.end() <= p.base || prog.base >= p.end();
            assert!(
                disjoint,
                "program [{:#x},{:#x}) overlaps [{:#x},{:#x})",
                prog.base,
                prog.end(),
                p.base,
                p.end()
            );
        }
        // Keep the list sorted by base: the ranges are disjoint, so
        // fetch can binary-search for the unique candidate program.
        let at = self.programs.partition_point(|p| p.base < prog.base);
        self.compiled
            .insert(at, uop::compile(&prog, &self.cost_table));
        self.programs.insert(at, prog);
        // Indices shifted; a stale hint could now point fetch at the
        // wrong program, so every hint is reset whenever the program
        // list mutates (here and in [`Machine::replace_program`]).
        for h in &self.fetch_hints {
            h.set(0);
        }
    }

    /// Replaces whatever is loaded in `prog`'s address range: any
    /// program overlapping it is unloaded, then `prog` is loaded.
    /// Returns the number of programs removed.
    ///
    /// Like [`Machine::load`], this resets every fetch hint — a hint
    /// left pointing at a removed or shifted entry must never serve a
    /// fetch from the wrong program (the pre-decoded micro-op image is
    /// dropped and rebuilt with it).
    pub fn replace_program(&mut self, prog: Program) -> usize {
        let mut removed = 0;
        let mut i = 0;
        while i < self.programs.len() {
            let p = &self.programs[i];
            let overlaps = prog.end() > p.base && prog.base < p.end();
            if overlaps {
                self.programs.remove(i);
                self.compiled.remove(i);
                removed += 1;
            } else {
                i += 1;
            }
        }
        self.load(prog);
        removed
    }

    /// Immutable core access.
    pub fn core(&self, cpu: usize) -> &CoreState {
        &self.cores[cpu]
    }

    /// Mutable core access (hypervisor handlers rewrite state through
    /// this; architectural costs must be charged via the `hyp_*`
    /// helpers).
    pub fn core_mut(&mut self, cpu: usize) -> &mut CoreState {
        &mut self.cores[cpu]
    }

    /// Number of cores.
    pub fn ncpus(&self) -> usize {
        self.cores.len()
    }

    // ------------------------------------------------------------------
    // Host (EL2 native software) access helpers: charge hardware costs.
    // ------------------------------------------------------------------

    /// Host hypervisor system-register read (EL2 privilege, no traps).
    pub fn hyp_read(&mut self, cpu: usize, reg: SysReg) -> u64 {
        let c = self.cost_table.cost(Event::SysRegRead);
        self.counter.charge(Event::SysRegRead, c);
        self.read_storage(cpu, reg)
    }

    /// Host hypervisor system-register write.
    pub fn hyp_write(&mut self, cpu: usize, reg: SysReg, value: u64) {
        let c = self.cost_table.cost(Event::SysRegWrite);
        self.counter.charge(Event::SysRegWrite, c);
        self.write_storage(cpu, reg, value);
    }

    /// Host physical-memory read (one 64-bit word).
    pub fn hyp_mem_read(&mut self, pa: u64) -> u64 {
        let c = self.cost_table.cost(Event::MemLoad);
        self.counter.charge(Event::MemLoad, c);
        self.mem.read_u64(pa)
    }

    /// Host physical-memory write.
    pub fn hyp_mem_write(&mut self, pa: u64, v: u64) {
        let c = self.cost_table.cost(Event::MemStore);
        self.counter.charge(Event::MemStore, c);
        self.mem.write_u64(pa, v);
    }

    /// Lump-sum software work in the host hypervisor (modelled C paths).
    pub fn hyp_work(&mut self, cycles: u64) {
        self.counter.charge_software(cycles);
    }

    /// Host TLB maintenance for one VMID.
    pub fn hyp_tlbi_vmid(&mut self, vmid: u16) {
        let c = self.cost_table.cost(Event::TlbFlush);
        self.counter.charge(Event::TlbFlush, c);
        self.tlb.flush_vmid(vmid);
    }

    /// Takes the pending MMIO request for `cpu`, if any.
    pub fn take_mmio(&mut self, cpu: usize) -> Option<MmioRequest> {
        self.pending_mmio[cpu].take()
    }

    /// Completes a trapped MMIO *load* by writing the destination GPR.
    pub fn complete_mmio_read(&mut self, cpu: usize, req: MmioRequest, value: u64) {
        debug_assert!(!req.write);
        self.cores[cpu].set_gpr(req.reg, value);
    }

    // ------------------------------------------------------------------
    // Register storage routing (no trap logic; privileged perspective).
    // ------------------------------------------------------------------

    fn read_storage(&mut self, cpu: usize, reg: SysReg) -> u64 {
        use SysReg::*;
        match reg {
            IchHcrEl2 | IchVtrEl2 | IchVmcrEl2 | IchMisrEl2 | IchEisrEl2 | IchElrsrEl2
            | IchAp0rEl2(_) | IchAp1rEl2(_) | IchLrEl2(_) => self.gic.ich_read(cpu, reg),
            r if Timers::owns(r) => {
                let now = self.counter.cycles();
                self.timers.read(cpu, r, now)
            }
            r => self.cores[cpu].regs.read(r),
        }
    }

    fn write_storage(&mut self, cpu: usize, reg: SysReg, value: u64) {
        use SysReg::*;
        match reg {
            IchHcrEl2 | IchVtrEl2 | IchVmcrEl2 | IchMisrEl2 | IchEisrEl2 | IchElrsrEl2
            | IchAp0rEl2(_) | IchAp1rEl2(_) | IchLrEl2(_) => self.gic.ich_write(cpu, reg, value),
            r if Timers::owns(r) => self.timers.write(cpu, r, value),
            VncrEl2 => {
                // The architected layout (paper Section 6.1): bits [11:1]
                // and [63:53] are RES0. A raw value carrying them is a
                // host bug — the hardware silently RES0s, but we surface
                // the discrepancy in the trace and to the checker
                // instead of masking it invisibly.
                let vncr = match neve_core::VncrEl2::try_from_raw(value) {
                    Ok(v) => v,
                    Err(e) => {
                        if let Some(t) = &mut self.trace {
                            t.push(TraceEvent::VncrRawSanitized { cpu, raw: value });
                        }
                        if self.checker.is_some() {
                            self.check_violation(
                                cpu,
                                ViolationKind::VncrReservedBits,
                                format!("raw write {value:#x}: {e}"),
                            );
                        }
                        neve_core::VncrEl2::from_raw(value)
                    }
                };
                if self.checker.is_some() && self.cores[cpu].pstate.el < 2 {
                    self.check_violation(
                        cpu,
                        ViolationKind::VncrWriteOutsideEl2,
                        format!("EL{} wrote VNCR_EL2", self.cores[cpu].pstate.el),
                    );
                }
                // The register file holds the sanitized value: reserved
                // bits read back as zero.
                self.cores[cpu].regs.write(reg, vncr.raw());
                self.cores[cpu].neve.vncr = vncr;
            }
            r => self.cores[cpu].regs.write_checked(r, value),
        }
    }

    // ------------------------------------------------------------------
    // Exception machinery.
    // ------------------------------------------------------------------

    fn hw_hcr(&self, cpu: usize) -> u64 {
        self.cores[cpu].regs.read(SysReg::HcrEl2)
    }

    fn nv_active(&self, cpu: usize) -> bool {
        self.cfg.arch.has_nv() && self.hw_hcr(cpu) & hcr::NV != 0
    }

    fn nv2_active(&self, cpu: usize) -> bool {
        self.cfg.arch.has_nv2()
            && self.hw_hcr(cpu) & hcr::NV2 != 0
            && self.nv_active(cpu)
            && self.cores[cpu].neve.enabled()
    }

    /// Latches syndrome state and raises the EL to 2. The caller then
    /// invokes the hypervisor and afterwards [`Machine::eret_from_el2`].
    ///
    /// Provenance: the trap itself is attributed to the phase it
    /// interrupted (almost always [`Phase::Guest`]), the hardware entry
    /// cycles to [`Phase::TrapEntry`], and the counter is left in
    /// [`Phase::HostSw`] — the baseline for the native handler, which
    /// marks finer phases itself via [`Machine::phase`].
    fn enter_el2(
        &mut self,
        cpu: usize,
        kind: TrapKind,
        esr_val: u64,
        far: u64,
        hpfar: u64,
        ret: u64,
    ) -> ExitInfo {
        if self.checker.is_some() {
            let from_el = self.cores[cpu].pstate.el;
            if from_el > 1 {
                self.check_violation(
                    cpu,
                    ViolationKind::IllegalElTransition,
                    format!("trap to EL2 from EL{from_el} (EL2 is native, it cannot trap)"),
                );
            }
            // Trap entry is a synchronization point: everything the TLB
            // cached about the live Stage-2 regime must still agree
            // with a fresh walk of the tables.
            self.check_tlb_coherence(cpu);
        }
        let from_phase = self.counter.phase();
        self.counter.record_trap(kind);
        self.counter.set_phase(Phase::TrapEntry);
        let c = self.cost_table.cost(Event::TrapEnter);
        self.counter.charge(Event::TrapEnter, c);
        if self.trace.is_some() {
            // Which register access pulled us in: system-register traps
            // carry the register code in the ISS (the TLB-maintenance
            // marker `iss == 1` intentionally decodes to none).
            let iss = esr::iss(esr_val);
            let sysreg = (kind == TrapKind::SysReg && iss != 1)
                .then(|| neve_sysreg::regcode::parse_sysreg_iss(iss))
                .flatten()
                .map(|(id, _, _)| id);
            if let Some(t) = &mut self.trace {
                t.push(TraceEvent::TrapToEl2 {
                    cpu,
                    kind,
                    esr: esr_val,
                    pc: ret,
                    phase: from_phase,
                    sysreg,
                });
            }
        }
        let spsr = self.cores[cpu].pstate.to_spsr();
        let regs = &mut self.cores[cpu].regs;
        regs.write(SysReg::EsrEl2, esr_val);
        regs.write(SysReg::FarEl2, far);
        regs.write(SysReg::HpfarEl2, hpfar);
        regs.write(SysReg::ElrEl2, ret);
        regs.write(SysReg::SpsrEl2, spsr);
        self.cores[cpu].pstate = Pstate {
            el: 2,
            irq_masked: true,
            fiq_masked: true,
        };
        self.counter.set_phase(Phase::HostSw);
        ExitInfo {
            esr: esr_val,
            elr: ret,
            far,
            hpfar,
        }
    }

    /// Returns from EL2 using `ELR_EL2`/`SPSR_EL2` (the hardware `eret`
    /// the machine performs after a native handler finishes). Leaves the
    /// counter back in [`Phase::Guest`].
    fn eret_from_el2(&mut self, cpu: usize) {
        self.counter.set_phase(Phase::TrapReturn);
        let c = self.cost_table.cost(Event::TrapReturn);
        self.counter.charge(Event::TrapReturn, c);
        let elr = self.cores[cpu].regs.read(SysReg::ElrEl2);
        let spsr = self.cores[cpu].regs.read(SysReg::SpsrEl2);
        self.cores[cpu].pstate = Pstate::from_spsr(spsr);
        if self.checker.is_some() && self.cores[cpu].pstate.el > 1 {
            let el = self.cores[cpu].pstate.el;
            self.check_violation(
                cpu,
                ViolationKind::IllegalElTransition,
                format!("host eret targets EL{el} (must lower into guest context)"),
            );
        }
        self.cores[cpu].pc = elr;
        self.counter.set_phase(Phase::Guest);
    }

    /// Host hypervisor: marks the world-switch phase now executing, for
    /// per-phase cycle/trap attribution and trace provenance. Returns
    /// the previous phase so callers can scope a region and restore it.
    /// Pure accounting — charges no cycles — so marking phases can never
    /// perturb measured numbers; a trace marker is pushed only when the
    /// phase actually changes.
    pub fn phase(&mut self, cpu: usize, phase: Phase) -> Phase {
        let prev = self.counter.set_phase(phase);
        if prev != phase {
            if let Some(t) = &mut self.trace {
                t.push(TraceEvent::PhaseChange { cpu, phase });
            }
        }
        prev
    }

    /// Delivers an exception to EL1 (state mutation only).
    ///
    /// `vector_offset` follows the architectural table: 0x200 sync /
    /// 0x280 IRQ from the current EL with SP_ELx, 0x400 / 0x480 from a
    /// lower EL.
    fn enter_el1(&mut self, cpu: usize, esr_val: u64, far: u64, ret: u64, is_irq: bool) {
        let c = self.cost_table.cost(Event::El1ExceptionEntry);
        self.counter.charge(Event::El1ExceptionEntry, c);
        let from_el = self.cores[cpu].pstate.el;
        if self.checker.is_some() && from_el > 1 {
            self.check_violation(
                cpu,
                ViolationKind::IllegalElTransition,
                format!("exception to EL1 from EL{from_el}"),
            );
        }
        let base = if from_el == 1 { 0x200 } else { 0x400 };
        let off = base + if is_irq { 0x80 } else { 0 };
        let spsr = self.cores[cpu].pstate.to_spsr();
        let regs = &mut self.cores[cpu].regs;
        regs.write(SysReg::EsrEl1, esr_val);
        regs.write(SysReg::FarEl1, far);
        regs.write(SysReg::ElrEl1, ret);
        regs.write(SysReg::SpsrEl1, spsr);
        let vbar = regs.read(SysReg::VbarEl1);
        if let Some(t) = &mut self.trace {
            t.push(TraceEvent::ExceptionToEl1 {
                cpu,
                esr: esr_val,
                vector: vbar + off,
            });
        }
        self.cores[cpu].pstate = Pstate {
            el: 1,
            irq_masked: true,
            fiq_masked: true,
        };
        self.cores[cpu].pc = vbar + off;
    }

    // ------------------------------------------------------------------
    // Guest system-register access routing (the trap decision tree of
    // paper Sections 2 and 4, plus NEVE's Section 6 rewrites).
    // ------------------------------------------------------------------

    /// Routes a guest `mrs`/`msr` at the core's current EL. `rt` is the
    /// transfer GPR, encoded into the trap syndrome for the hypervisor.
    ///
    /// Returns the value read (reads) or 0 (writes), or the trap that
    /// must be taken instead.
    fn route_sysreg(
        &mut self,
        cpu: usize,
        id: RegId,
        write: bool,
        val: u64,
        rt: u8,
    ) -> RouteOutcome {
        let el = self.cores[cpu].pstate.el;
        match el {
            2 => self.route_sysreg_el2(cpu, id, write, val),
            1 => self.route_sysreg_el1(cpu, id, write, val, rt),
            _ => self.route_sysreg_el0(cpu, id, write, val),
        }
    }

    fn route_sysreg_el2(&mut self, cpu: usize, id: RegId, write: bool, val: u64) -> RouteOutcome {
        // Only reached if a *program* runs at EL2 (bare-metal payloads in
        // unit tests); the host hypervisor is native and uses hyp_read /
        // hyp_write. VHE alias names resolve to the EL1 storage; plain
        // EL1 names under E2H redirect to the EL2 counterpart when one
        // exists (ARMv8.1 semantics, paper Section 2).
        let e2h = self.cfg.arch.has_vhe() && self.hw_hcr(cpu) & hcr::E2H != 0;
        let target = match id {
            RegId::El12(r) | RegId::El02(r) => {
                if !self.cfg.arch.has_vhe() {
                    return RouteOutcome::UndefEl1; // undefined encoding
                }
                r
            }
            RegId::Plain(r) => {
                if e2h && !r.is_el2() {
                    neve_sysreg::classify::el1_counterpart_inverse(r).unwrap_or(r)
                } else {
                    r
                }
            }
        };
        RouteOutcome::Done(self.perform(cpu, target, write, val))
    }

    fn route_sysreg_el1(
        &mut self,
        cpu: usize,
        id: RegId,
        write: bool,
        val: u64,
        rt: u8,
    ) -> RouteOutcome {
        let nv = self.nv_active(cpu);
        let nv1 = self.hw_hcr(cpu) & hcr::NV1 != 0;
        let base = id.base_reg();
        let sysreg_esr = esr::build(
            esr::EC_SYSREG,
            neve_sysreg::regcode::sysreg_iss(id, write, rt),
        );

        // VHE-added alias names (`*_EL12`, `*_EL02`): undefined below EL2
        // without NV; with NV they always trap (paper Section 7.1 notes
        // even the timer EL02 forms "always trap"); with NV2 they are VM
        // register accesses and defer to the access page.
        if id.is_vhe_alias() {
            if !nv {
                return RouteOutcome::UndefEl1;
            }
            if self.nv2_active(cpu) {
                let vhe_guest = true; // only VHE guests emit these names
                match self.cores[cpu].neve.disposition(id, write, vhe_guest) {
                    Disposition::Memory { offset } => {
                        return RouteOutcome::Done(
                            self.vncr_slot_access(cpu, id, offset, write, val),
                        );
                    }
                    Disposition::RedirectEl1(t) => {
                        return RouteOutcome::Done(self.perform(cpu, t, write, val));
                    }
                    Disposition::Trap | Disposition::Passthrough => {}
                }
            }
            self.note_deferrable_trap(id, write, true);
            return RouteOutcome::TrapEl2(TrapKind::SysReg, sysreg_esr);
        }

        if base.is_el2() {
            // A hypervisor instruction. UNDEFINED at EL1 without nested
            // virtualization (the crash the paper describes in Section
            // 2); trapped with NV; rewritten with NEVE.
            if !nv {
                return RouteOutcome::UndefEl1;
            }
            if self.nv2_active(cpu) {
                // The guest's (virtual) E2H selects the TCR/TTBR0
                // treatment; NV1 clear means the host runs a VHE guest.
                let vhe_guest = !nv1;
                match self.cores[cpu].neve.disposition(id, write, vhe_guest) {
                    Disposition::Memory { offset } => {
                        return RouteOutcome::Done(
                            self.vncr_slot_access(cpu, id, offset, write, val),
                        );
                    }
                    Disposition::RedirectEl1(t) => {
                        return RouteOutcome::Done(self.perform(cpu, t, write, val));
                    }
                    Disposition::Trap | Disposition::Passthrough => {}
                }
            }
            self.note_deferrable_trap(id, write, !nv1);
            return RouteOutcome::TrapEl2(TrapKind::SysReg, sysreg_esr);
        }

        // Plain EL1/EL0-named access at EL1.
        if nv
            && nv1
            && matches!(
                neve_class(base),
                NeveClass::VmExecutionControl | NeveClass::DebugTrapOnWrite
            )
        {
            // The EL1 register file holds the *VM's* state while a
            // non-VHE guest hypervisor runs (paper Section 4, second
            // kind): these accesses trap (TVM/TRVM/NV1) or, with NEVE,
            // defer to the access page.
            if self.nv2_active(cpu) {
                if let Disposition::Memory { offset } =
                    self.cores[cpu].neve.disposition(id, write, false)
                {
                    return RouteOutcome::Done(self.vncr_slot_access(cpu, id, offset, write, val));
                }
            }
            self.note_deferrable_trap(id, write, false);
            return RouteOutcome::TrapEl2(TrapKind::SysReg, sysreg_esr);
        }

        // GIC SGI generation traps to the hypervisor when running as a VM
        // (virtual IPIs are emulated, paper Section 5's Virtual IPI
        // microbenchmark).
        if base == SysReg::IccSgi1rEl1 && write && self.hw_hcr(cpu) & hcr::IMO != 0 {
            return RouteOutcome::TrapEl2(TrapKind::SysReg, sysreg_esr);
        }

        // EL1 physical-timer access traps when the hypervisor keeps
        // CNTHCTL_EL2.EL1PCEN clear for a VM.
        if matches!(base, SysReg::CntpCtlEl0 | SysReg::CntpCvalEl0)
            && self.hw_hcr(cpu) & hcr::VM != 0
        {
            let cnthctl = self.read_storage(cpu, SysReg::CnthctlEl2);
            if cnthctl & neve_sysreg::bits::cnthctl::EL1PCEN == 0 {
                return RouteOutcome::TrapEl2(TrapKind::SysReg, sysreg_esr);
            }
        }

        RouteOutcome::Done(self.perform(cpu, base, write, val))
    }

    fn route_sysreg_el0(&mut self, cpu: usize, id: RegId, write: bool, val: u64) -> RouteOutcome {
        let base = id.base_reg();
        if id.is_vhe_alias() || base.min_el() > 0 {
            return RouteOutcome::UndefEl1;
        }
        RouteOutcome::Done(self.perform(cpu, base, write, val))
    }

    /// Performs an (already-routed) register access with device dispatch
    /// and VM-interrupt-interface semantics.
    fn perform(&mut self, cpu: usize, reg: SysReg, write: bool, val: u64) -> u64 {
        use SysReg::*;
        let virtual_if = self.cores[cpu].pstate.el <= 1 && self.hw_hcr(cpu) & hcr::IMO != 0;
        match (reg, write) {
            // The GIC CPU interface: a VM (IMO set) talks to the *virtual*
            // interface backed by list registers — acknowledge and EOI
            // complete in hardware without traps (paper's Virtual EOI).
            (IccIar1El1, false) => {
                if virtual_if {
                    self.gic.virq_ack(cpu).map(u64::from).unwrap_or(1023)
                } else {
                    self.gic.dist.ack(cpu).map(u64::from).unwrap_or(1023)
                }
            }
            (IccEoir1El1, true) => {
                if virtual_if {
                    self.gic.virq_eoi(cpu, val as u32);
                } else {
                    self.gic.dist.eoi(cpu, val as u32);
                }
                0
            }
            (IccSgi1rEl1, true) => {
                // Only reachable untrapped from hypervisor-ish contexts.
                let intid = (val >> 24) & 0xf;
                let targets = (val & 0xffff) as u16;
                self.gic.dist.send_sgi(cpu, targets, intid as u32);
                0
            }
            (r, false) => self.read_storage(cpu, r),
            (r, true) => {
                self.write_storage(cpu, r, val);
                0
            }
        }
    }

    /// Oracle counter: a system-register trap is about to be taken that
    /// *full* NEVE hardware would have rewritten into an access-page
    /// memory operation. The architectural disposition deliberately
    /// ignores this machine's VNCR enable state and feature knobs — the
    /// same access is counted identically on ARMv8.3 (where every such
    /// access traps) and on NEVE hardware with deferral partially
    /// disabled, which is what makes the trap-count algebra
    /// `v8.3 deferrable = NEVE deferrals + NEVE residual deferrable`
    /// well-defined across configurations.
    fn note_deferrable_trap(&mut self, id: RegId, write: bool, vhe_guest: bool) {
        if matches!(
            NeveEngine::architectural_disposition(id, write, vhe_guest),
            Disposition::Memory { .. }
        ) {
            self.deferrable_sysreg_traps += 1;
        }
    }

    /// NEVE: a register access rewritten into a deferred-access-page slot
    /// access (charged as memory, paper Section 6.1). Records the
    /// suppressed trap — which register, which direction, which slot —
    /// in the trace, so deferrals are as attributable as real traps.
    fn vncr_slot_access(
        &mut self,
        cpu: usize,
        id: RegId,
        offset: u16,
        write: bool,
        val: u64,
    ) -> u64 {
        self.vncr_deferrals += 1;
        if let Some(t) = &mut self.trace {
            t.push(TraceEvent::VncrDeferred {
                cpu,
                reg: id,
                write,
                offset,
            });
        }
        let addr = self.cores[cpu].neve.slot_address(offset);
        if write {
            let c = self.cost_table.cost(Event::MemStore);
            self.counter.charge(Event::MemStore, c);
            // An armed injection tampers with this one deferred write:
            // Drop models a lost cached-copy synchronization (the store
            // is charged but the slot keeps its stale value), Double a
            // duplicated one (the second store is charged too).
            let tamper = self.fault_plan.as_mut().and_then(|p| p.take_armed_vncr());
            match tamper {
                Some(VncrTamper::Drop) => {}
                Some(VncrTamper::Double) => {
                    self.counter.charge(Event::MemStore, c);
                    self.mem.write_u64(addr, val);
                    self.mem.write_u64(addr, val);
                }
                None => self.mem.write_u64(addr, val),
            }
            0
        } else {
            let c = self.cost_table.cost(Event::MemLoad);
            self.counter.charge(Event::MemLoad, c);
            self.mem.read_u64(addr)
        }
    }

    // ------------------------------------------------------------------
    // Checked-mode invariants (only run with a checker attached; raw
    // memory reads, so never a cycle charged).
    // ------------------------------------------------------------------

    /// Per-step structural scan of the live Stage-2 table: every root
    /// descriptor covering populated RAM must be invalid or a
    /// well-formed next-table pointer (this format has no level-1
    /// blocks, and a pointer outside RAM can never be walked). Running
    /// this *every step* is what pins a corrupted shadow table to the
    /// exact step the corruption appeared — the host transparently
    /// repairs such corruption within the same step on the next guest
    /// access, so any later sync point may already see a healthy table.
    fn checked_step_invariants(&mut self, cpu: usize) {
        use neve_memsim::{DESC_ADDR, DESC_TABLE, DESC_VALID};
        let vttbr_v = self.cores[cpu].regs.read(SysReg::VttbrEl2);
        let root = vttbr::baddr(vttbr_v);
        if root == 0 || root + 4096 > self.mem.limit() {
            return;
        }
        // One root slot covers 1 GiB; only slots that can translate a
        // populated physical address are live (the rest never walk).
        let covered = (self.mem.limit().div_ceil(1 << 30)).min(512);
        for i in 0..covered {
            let desc = self.mem.read_u64(root + i * 8);
            if desc & DESC_VALID == 0 {
                continue;
            }
            if desc & DESC_TABLE == 0 {
                self.check_violation(
                    cpu,
                    ViolationKind::MalformedStage2,
                    format!("root slot {i} descriptor {desc:#x}: valid but not a table"),
                );
                continue;
            }
            let next = desc & DESC_ADDR;
            if next + 4096 > self.mem.limit() {
                self.check_violation(
                    cpu,
                    ViolationKind::MalformedStage2,
                    format!("root slot {i} table pointer {next:#x} outside populated RAM"),
                );
            }
        }
    }

    /// Trap-sync-point check: every TLB entry cached for the live
    /// Stage-2 regime must agree with a fresh walk of the current
    /// tables. Combined S1+S2 entries cannot be decomposed after the
    /// fact, so the check only runs while Stage 1 is off for this cpu
    /// (exactly the regime the nested configurations use).
    fn check_tlb_coherence(&mut self, cpu: usize) {
        let vttbr_v = self.cores[cpu].regs.read(SysReg::VttbrEl2);
        let root = vttbr::baddr(vttbr_v);
        if root == 0 {
            return;
        }
        if self.cores[cpu].regs.read(SysReg::SctlrEl1) & 1 != 0 {
            return;
        }
        let vmid = vttbr::vmid(vttbr_v);
        let mut bad = Vec::new();
        for (key, entry) in self.tlb.entries() {
            if !key.stage2 || key.vmid != vmid {
                continue;
            }
            // Walk with an access the cached entry claims to permit, so
            // a permission fault genuinely means the grant changed.
            let access = if entry.perms.r {
                Access::Read
            } else if entry.perms.w {
                Access::Write
            } else {
                Access::Fetch
            };
            match walk(&self.mem, PageTable { root }, key.page, access) {
                Ok(t) => {
                    if t.pa & !0xfff != entry.out_page || t.perms != entry.perms {
                        bad.push(format!(
                            "page {:#x}: cached {:#x} {:?}, tables say {:#x} {:?}",
                            key.page,
                            entry.out_page,
                            entry.perms,
                            t.pa & !0xfff,
                            t.perms,
                        ));
                    }
                }
                // A translation hole is not a violation: the simulator
                // shares one TLB across cores while shadow tables are
                // per-core under a common VMID, so an entry may have
                // been filled from a sibling core's (lazily populated)
                // shadow — and wholesale shadow invalidation always
                // flushes the VMID, so a genuine unmap cannot leave a
                // stale entry behind. Structural damage and permission
                // regressions, by contrast, are always violations.
                Err(f) if f.kind == neve_memsim::FaultKind::Translation => {}
                Err(f) => bad.push(format!(
                    "page {:#x}: cached {:#x}, fresh walk faults ({:?} at level {})",
                    key.page, entry.out_page, f.kind, f.level,
                )),
            }
        }
        for detail in bad {
            self.check_violation(cpu, ViolationKind::TlbIncoherent, detail);
        }
    }

    // ------------------------------------------------------------------
    // Deterministic fault injection.
    // ------------------------------------------------------------------

    /// Fires every injection due at the current step count.
    fn inject_due_faults(&mut self, hyp: &mut dyn Hypervisor, cpu: usize) {
        loop {
            let due = match &mut self.fault_plan {
                Some(plan) => plan.take_due(self.steps),
                None => None,
            };
            let Some(inj) = due else { return };
            self.inject_fault(hyp, cpu, inj);
        }
    }

    /// Applies one scheduled injection.
    fn inject_fault(&mut self, hyp: &mut dyn Hypervisor, cpu: usize, inj: Injection) {
        if let Some(t) = &mut self.trace {
            t.push(TraceEvent::FaultInjected {
                cpu,
                fault: inj.fault,
                step: self.steps,
            });
        }
        match inj.fault {
            InjectedFault::CorruptShadowPte => self.corrupt_stage2_pte(cpu, inj.param),
            InjectedFault::DropVncrWrite => {
                if let Some(p) = &mut self.fault_plan {
                    p.arm_vncr(VncrTamper::Drop);
                }
            }
            InjectedFault::DoubleVncrWrite => {
                if let Some(p) = &mut self.fault_plan {
                    p.arm_vncr(VncrTamper::Double);
                }
            }
            InjectedFault::SpuriousTrap => self.inject_spurious_trap(hyp, cpu),
            InjectedFault::ResetCycleCounter => self.counter.reset(),
        }
    }

    /// Overwrites one root-level descriptor of the Stage-2 table the
    /// hardware VTTBR points at (the shadow table while a nested guest
    /// runs), then invalidates the TLB for that VMID so the next walk
    /// observes the corruption. The garbage flavour cycles through the
    /// interesting failure shapes: a vanished entry, a malformed
    /// (block-where-table-expected) descriptor, and a table pointer
    /// into the weeds.
    fn corrupt_stage2_pte(&mut self, cpu: usize, param: u64) {
        let vttbr_v = self.cores[cpu].regs.read(SysReg::VttbrEl2);
        let root = vttbr::baddr(vttbr_v);
        if root == 0 {
            // No Stage-2 table installed (bare-metal context): nothing
            // to corrupt.
            return;
        }
        let slot = root + (param % 512) * 8;
        if slot + 8 > self.mem.limit() {
            return;
        }
        use neve_memsim::{DESC_ADDR, DESC_TABLE, DESC_VALID};
        let garbage = match param % 3 {
            0 => 0,
            1 => DESC_VALID | (param & DESC_ADDR),
            _ => DESC_VALID | DESC_TABLE | (param.rotate_left(17) & DESC_ADDR),
        };
        self.mem.write_u64(slot, garbage);
        self.tlb.flush_vmid(vttbr::vmid(vttbr_v));
    }

    /// Delivers an IRQ trap to EL2 with nothing pending: the host
    /// hypervisor's interrupt path runs, finds no interrupt, and
    /// returns — a phantom interrupt mid world switch.
    fn inject_spurious_trap(&mut self, hyp: &mut dyn Hypervisor, cpu: usize) {
        if self.cores[cpu].pstate.el > 1 {
            return;
        }
        let pc = self.cores[cpu].pc;
        let info = self.enter_el2(cpu, TrapKind::Irq, 0, 0, 0, pc);
        let _ = info;
        hyp.handle_irq(self, cpu);
        self.eret_from_el2(cpu);
    }

    // ------------------------------------------------------------------
    // Data memory access with two-stage translation.
    // ------------------------------------------------------------------

    /// Translates and performs a guest load/store. `Err` carries the trap
    /// that was delivered instead (EL1 aborts are delivered internally).
    fn data_access(
        &mut self,
        cpu: usize,
        hyp: &mut dyn Hypervisor,
        va: u64,
        write: bool,
        reg: u8,
    ) -> Option<u64> {
        let el = self.cores[cpu].pstate.el;
        let pc = self.cores[cpu].pc;
        let access = if write { Access::Write } else { Access::Read };

        // Stage 1: the guest's own tables when enabled; identity
        // otherwise. Hypervisor-native contexts (EL2) are identity.
        let s1_on = el <= 1 && self.cores[cpu].regs.read(SysReg::SctlrEl1) & 1 != 0;
        let s2_on = el <= 1 && self.hw_hcr(cpu) & hcr::VM != 0;
        let vmid = if s2_on {
            vttbr::vmid(self.cores[cpu].regs.read(SysReg::VttbrEl2))
        } else {
            0
        };

        let key = TlbKey {
            vmid,
            stage2: s2_on,
            page: va & !0xfff,
        };
        let pa = if let Some(e) = self.tlb.lookup_cpu(cpu, key) {
            if !e.perms.allows(access) {
                // Conservative: permission misses re-walk below.
                None
            } else {
                Some(e.out_page | (va & 0xfff))
            }
        } else {
            None
        };

        let pa = match pa {
            Some(pa) => pa,
            None => {
                // The permissions to cache are what every enabled stage
                // grants; identity (disabled) stages grant everything.
                let mut walked_perms = neve_memsim::Perms::RWX;
                // Walk stage 1.
                let ipa = if s1_on {
                    let root = self.cores[cpu].regs.read(SysReg::Ttbr0El1) & !0xfff;
                    match walk(&self.mem, PageTable { root }, va, access) {
                        Ok(t) => {
                            let c = self.cost_table.cost(Event::PageWalkLevel);
                            self.counter
                                .charge_n(Event::PageWalkLevel, c, t.levels_walked as u64);
                            walked_perms = walked_perms.intersect(t.perms);
                            t.pa
                        }
                        Err(f) => {
                            let c = self.cost_table.cost(Event::PageWalkLevel);
                            self.counter
                                .charge_n(Event::PageWalkLevel, c, f.levels_walked as u64);
                            // Stage-1 abort: to EL1 (or EL2 under TGE).
                            let esr_v = esr::build(esr::EC_DABT_LOW, 0);
                            if self.hw_hcr(cpu) & hcr::TGE != 0 {
                                let info =
                                    self.enter_el2(cpu, TrapKind::Stage1Abort, esr_v, va, 0, pc);
                                hyp.handle_sync(self, cpu, info);
                                self.eret_from_el2(cpu);
                            } else {
                                self.enter_el1(cpu, esr_v, va, pc, false);
                            }
                            return None;
                        }
                    }
                } else {
                    va
                };
                // Walk stage 2.
                let pa = if s2_on {
                    let root = vttbr::baddr(self.cores[cpu].regs.read(SysReg::VttbrEl2));
                    match walk(&self.mem, PageTable { root }, ipa, access) {
                        Ok(t) => {
                            let c = self.cost_table.cost(Event::PageWalkLevel);
                            self.counter
                                .charge_n(Event::PageWalkLevel, c, t.levels_walked as u64);
                            walked_perms = walked_perms.intersect(t.perms);
                            t.pa
                        }
                        Err(f) => {
                            let c = self.cost_table.cost(Event::PageWalkLevel);
                            self.counter
                                .charge_n(Event::PageWalkLevel, c, f.levels_walked as u64);
                            // Stage-2 abort: to EL2 with the IPA latched;
                            // this is also the MMIO emulation path.
                            self.pending_mmio[cpu] = Some(MmioRequest {
                                write,
                                reg,
                                value: if write { self.cores[cpu].gpr(reg) } else { 0 },
                                ipa,
                            });
                            let esr_v = esr::build(esr::EC_DABT_LOW, 1 << 24);
                            let info = self.enter_el2(
                                cpu,
                                TrapKind::Stage2Abort,
                                esr_v,
                                va,
                                ipa & !0xfff,
                                pc,
                            );
                            hyp.handle_sync(self, cpu, info);
                            self.eret_from_el2(cpu);
                            return None;
                        }
                    }
                } else {
                    ipa
                };
                self.tlb.insert(
                    key,
                    neve_memsim::tlb::TlbEntry {
                        out_page: pa & !0xfff,
                        perms: walked_perms,
                    },
                );
                pa
            }
        };

        // A physical access beyond the populated RAM is an external
        // abort, delivered to EL1 — a guest can reach here with the MMU
        // off and a wild pointer; it must never bring the machine down.
        if pa.checked_add(8).is_none() || pa + 8 > self.mem.limit() {
            self.enter_el1(cpu, esr::build(esr::EC_DABT_LOW, 0), va, pc, false);
            return None;
        }

        if write {
            let c = self.cost_table.cost(Event::MemStore);
            self.counter.charge(Event::MemStore, c);
            let v = self.cores[cpu].gpr(reg);
            self.mem.write_u64(pa, v);
            Some(0)
        } else {
            let c = self.cost_table.cost(Event::MemLoad);
            self.counter.charge(Event::MemLoad, c);
            Some(self.mem.read_u64(pa))
        }
    }

    // ------------------------------------------------------------------
    // Interrupt delivery.
    // ------------------------------------------------------------------

    /// Polls timers into the distributor and delivers any deliverable
    /// interrupt. Returns true if an exception was delivered.
    fn poll_interrupts(&mut self, cpu: usize, hyp: &mut dyn Hypervisor) -> bool {
        // Timer lines -> banked PPIs.
        let now = self.counter.cycles();
        for ppi in self.timers.firing(cpu, now) {
            self.gic.dist.raise_banked(cpu, ppi);
        }

        let el = self.cores[cpu].pstate.el;
        if el == 2 {
            return false;
        }
        let hcr_v = self.hw_hcr(cpu);

        // Physical interrupts routed to EL2 (taken regardless of
        // PSTATE.I at EL0/EL1 when IMO is set).
        if hcr_v & hcr::IMO != 0 && self.gic.dist.pending_for(cpu).is_some() {
            self.cores[cpu].wfi = false;
            let pc = self.cores[cpu].pc;
            let info = self.enter_el2(cpu, TrapKind::Irq, 0, 0, 0, pc);
            let _ = info;
            hyp.handle_irq(self, cpu);
            self.eret_from_el2(cpu);
            return true;
        }

        // Virtual interrupts from the list registers.
        if hcr_v & hcr::IMO != 0 && !self.cores[cpu].pstate.irq_masked && self.gic.virq_line(cpu) {
            self.cores[cpu].wfi = false;
            let pc = self.cores[cpu].pc;
            self.enter_el1(cpu, 0, 0, pc, true);
            return true;
        }

        // Bare-metal (no IMO): physical IRQ to EL1.
        if hcr_v & hcr::IMO == 0
            && !self.cores[cpu].pstate.irq_masked
            && self.gic.dist.pending_for(cpu).is_some()
        {
            self.cores[cpu].wfi = false;
            let pc = self.cores[cpu].pc;
            self.enter_el1(cpu, 0, 0, pc, true);
            return true;
        }
        false
    }

    // ------------------------------------------------------------------
    // The interpreter.
    // ------------------------------------------------------------------

    /// Fetches through `cpu`'s last-program-hit hint. Straight-line
    /// code stays within one program for thousands of steps, so the
    /// common case is a single range check; the binary search over the
    /// sorted, disjoint program list only runs on a program change.
    /// Equivalent to the old linear scan for every pc (the ranges are
    /// disjoint, so at most one program can serve a pc — the
    /// `indexed_fetch_agrees_with_linear_scan` proptest holds this).
    fn fetch(&self, cpu: usize, pc: u64) -> Option<Instr> {
        let hint = &self.fetch_hints[cpu];
        if let Some(p) = self.programs.get(hint.get()) {
            if let Some(i) = p.fetch(pc) {
                return Some(i);
            }
        }
        // Unique candidate: the last program whose base is <= pc.
        let idx = self
            .programs
            .partition_point(|p| p.base <= pc)
            .checked_sub(1)?;
        let i = self.programs[idx].fetch(pc)?;
        hint.set(idx);
        Some(i)
    }

    /// Looks up the instruction at `pc` without executing (harness use:
    /// bracketing fine-grained measurements). Shares cpu 0's fetch
    /// hint: the bracketing harnesses peek at the pc cpu 0 is about to
    /// execute.
    pub fn peek(&self, pc: u64) -> Option<Instr> {
        self.fetch(0, pc)
    }

    /// Executes one instruction on `cpu` (delivering pending interrupts
    /// first). Traps to EL2 synchronously invoke `hyp`.
    ///
    /// Dispatches through the selected [`Engine`]: the pre-decoded
    /// micro-op IR by default, or the reference interpreter
    /// ([`Machine::step_interp`]) — which also takes over automatically
    /// whenever an observer is attached (trace, fault plan, checker),
    /// so every instrumented run exercises the oracle semantics.
    pub fn step(&mut self, hyp: &mut dyn Hypervisor, cpu: usize) -> StepOutcome {
        match self.active_engine() {
            Engine::Uop => self.step_uop(hyp, cpu),
            Engine::Interp => self.step_interp(hyp, cpu),
        }
    }

    /// The engine [`Machine::step`] will actually dispatch to: the
    /// configured engine, downgraded to the reference interpreter
    /// whenever a trace, fault plan, or checker is attached — those
    /// layers observe or perturb per-step state the micro-op fast path
    /// deliberately does not model, so instrumented runs always get
    /// oracle semantics.
    pub fn active_engine(&self) -> Engine {
        if self.engine == Engine::Uop
            && self.trace.is_none()
            && self.fault_plan.is_none()
            && self.checker.is_none()
        {
            Engine::Uop
        } else {
            Engine::Interp
        }
    }

    /// The reference interpreter: fetches, decodes and executes one
    /// instruction from the loaded [`Program`]s. This is the oracle the
    /// micro-op engine is checked against; it never reads the
    /// pre-decoded IR.
    pub fn step_interp(&mut self, hyp: &mut dyn Hypervisor, cpu: usize) -> StepOutcome {
        if let Some(code) = self.cores[cpu].halted {
            return StepOutcome::Halted(code);
        }
        // The step counter advances unconditionally; everything else in
        // the injection path is gated on a plan being attached, so with
        // injection off the measured run is bit-identical to a build
        // without this machinery.
        self.steps += 1;
        if self.fault_plan.is_some() {
            self.inject_due_faults(hyp, cpu);
            if let Some(code) = self.cores[cpu].halted {
                return StepOutcome::Halted(code);
            }
        }
        // Checked mode validates *after* injections fire, so a fault
        // planted this step is observed at exactly this step count —
        // before the host gets any chance to repair it in-line.
        if self.checker.is_some() {
            self.checked_step_invariants(cpu);
        }
        if self.poll_interrupts(cpu, hyp) {
            return StepOutcome::Executed;
        }
        if self.cores[cpu].wfi {
            // Idle. A wheel-driven run loop reacts by parking the core
            // ([`Machine::park`]) so it costs nothing until an event
            // targets it; a legacy polling loop just sees `Wfi` again
            // next round.
            self.counter.advance(0);
            return StepOutcome::Wfi;
        }

        let pc = self.cores[cpu].pc;
        let Some(instr) = self.fetch(cpu, pc) else {
            return StepOutcome::FetchFailure(pc);
        };
        if let Some(t) = &mut self.trace {
            t.push(TraceEvent::Retired {
                cpu,
                pc,
                el: self.cores[cpu].pstate.el,
                instr,
            });
        }
        self.exec_instr(hyp, cpu, pc, instr)
    }

    /// Executes one fetched instruction: the shared decode-and-execute
    /// arm behind both engines (the interpreter for every instruction,
    /// the micro-op engine for [`Uop::Slow`] ones), so their semantics
    /// and cycle charges cannot drift apart.
    fn exec_instr(
        &mut self,
        hyp: &mut dyn Hypervisor,
        cpu: usize,
        pc: u64,
        instr: Instr,
    ) -> StepOutcome {
        let mut next_pc = pc + 4;
        let instr_c = self.cost_table.cost(Event::Instr);
        let barrier_c = self.cost_table.cost(Event::Barrier);
        let tlb_c = self.cost_table.cost(Event::TlbFlush);
        let eret_c = self.cost_table.cost(Event::EretNative);
        let sread_c = self.cost_table.cost(Event::SysRegRead);
        let swrite_c = self.cost_table.cost(Event::SysRegWrite);
        let dirq_c = self.cost_table.cost(Event::DirectIrqOp);

        match instr {
            Instr::Nop => self.counter.charge(Event::Instr, instr_c),
            Instr::Work(n) => self.counter.charge(Event::Instr, instr_c * n.max(1)),
            Instr::MovImm(rd, imm) => {
                self.counter.charge(Event::Instr, instr_c);
                self.cores[cpu].set_gpr(rd, imm);
            }
            Instr::Mov(rd, rn) => {
                self.counter.charge(Event::Instr, instr_c);
                let v = self.cores[cpu].gpr(rn);
                self.cores[cpu].set_gpr(rd, v);
            }
            Instr::Add(rd, rn, rm) => {
                self.counter.charge(Event::Instr, instr_c);
                let v = self.cores[cpu]
                    .gpr(rn)
                    .wrapping_add(self.cores[cpu].gpr(rm));
                self.cores[cpu].set_gpr(rd, v);
            }
            Instr::AddImm(rd, rn, imm) => {
                self.counter.charge(Event::Instr, instr_c);
                let v = self.cores[cpu].gpr(rn).wrapping_add(imm);
                self.cores[cpu].set_gpr(rd, v);
            }
            Instr::Sub(rd, rn, rm) => {
                self.counter.charge(Event::Instr, instr_c);
                let v = self.cores[cpu]
                    .gpr(rn)
                    .wrapping_sub(self.cores[cpu].gpr(rm));
                self.cores[cpu].set_gpr(rd, v);
            }
            Instr::SubImm(rd, rn, imm) => {
                self.counter.charge(Event::Instr, instr_c);
                let v = self.cores[cpu].gpr(rn).wrapping_sub(imm);
                self.cores[cpu].set_gpr(rd, v);
            }
            Instr::And(rd, rn, rm) => {
                self.counter.charge(Event::Instr, instr_c);
                let v = self.cores[cpu].gpr(rn) & self.cores[cpu].gpr(rm);
                self.cores[cpu].set_gpr(rd, v);
            }
            Instr::Orr(rd, rn, rm) => {
                self.counter.charge(Event::Instr, instr_c);
                let v = self.cores[cpu].gpr(rn) | self.cores[cpu].gpr(rm);
                self.cores[cpu].set_gpr(rd, v);
            }
            Instr::OrrImm(rd, rn, imm) => {
                self.counter.charge(Event::Instr, instr_c);
                let v = self.cores[cpu].gpr(rn) | imm;
                self.cores[cpu].set_gpr(rd, v);
            }
            Instr::LslImm(rd, rn, sh) => {
                self.counter.charge(Event::Instr, instr_c);
                // AArch64 shifts take the amount modulo the register
                // width; a plain `<<` would panic in debug for sh >= 64.
                let v = self.cores[cpu].gpr(rn).wrapping_shl(u32::from(sh));
                self.cores[cpu].set_gpr(rd, v);
            }
            Instr::LsrImm(rd, rn, sh) => {
                self.counter.charge(Event::Instr, instr_c);
                let v = self.cores[cpu].gpr(rn).wrapping_shr(u32::from(sh));
                self.cores[cpu].set_gpr(rd, v);
            }
            Instr::B(a) => {
                self.counter.charge(Event::Instr, instr_c);
                next_pc = a;
            }
            Instr::Bl(a) => {
                self.counter.charge(Event::Instr, instr_c);
                self.cores[cpu].set_gpr(crate::isa::LR, next_pc);
                next_pc = a;
            }
            Instr::Ret => {
                self.counter.charge(Event::Instr, instr_c);
                next_pc = self.cores[cpu].gpr(crate::isa::LR);
            }
            Instr::Cbz(rn, a) => {
                self.counter.charge(Event::Instr, instr_c);
                if self.cores[cpu].gpr(rn) == 0 {
                    next_pc = a;
                }
            }
            Instr::Cbnz(rn, a) => {
                self.counter.charge(Event::Instr, instr_c);
                if self.cores[cpu].gpr(rn) != 0 {
                    next_pc = a;
                }
            }
            Instr::Halt(code) => {
                self.cores[cpu].halted = Some(code);
                return StepOutcome::Halted(code);
            }
            Instr::Isb | Instr::Dsb => {
                let c = barrier_c;
                self.counter.charge(Event::Barrier, c);
            }
            Instr::Wfi => {
                let el = self.cores[cpu].pstate.el;
                if el <= 1 && self.hw_hcr(cpu) & hcr::TWI != 0 {
                    let info =
                        self.enter_el2(cpu, TrapKind::Wfx, esr::build(esr::EC_WFX, 0), 0, 0, pc);
                    hyp.handle_sync(self, cpu, info);
                    self.eret_from_el2(cpu);
                    next_pc = self.cores[cpu].pc;
                } else {
                    self.counter.charge(Event::Instr, instr_c);
                    self.cores[cpu].wfi = true;
                    self.cores[cpu].pc = next_pc;
                    return StepOutcome::Wfi;
                }
            }
            Instr::TlbiVmall => {
                let el = self.cores[cpu].pstate.el;
                if el == 1 && self.nv_active(cpu) {
                    // A hypervisor TLB-maintenance instruction from
                    // virtual EL2 traps even with NEVE.
                    let info = self.enter_el2(
                        cpu,
                        TrapKind::SysReg,
                        esr::build(esr::EC_SYSREG, 1),
                        0,
                        0,
                        pc,
                    );
                    hyp.handle_sync(self, cpu, info);
                    self.eret_from_el2(cpu);
                    next_pc = self.cores[cpu].pc;
                } else {
                    let c = tlb_c;
                    self.counter.charge(Event::TlbFlush, c);
                    let vmid = vttbr::vmid(self.cores[cpu].regs.read(SysReg::VttbrEl2));
                    self.tlb.flush_vmid(vmid);
                }
            }
            Instr::Hvc(imm) => {
                let el = self.cores[cpu].pstate.el;
                if el == 0 {
                    self.enter_el1(cpu, esr::build(esr::EC_UNKNOWN, 0), 0, pc, false);
                    next_pc = self.cores[cpu].pc;
                } else {
                    // Preferred return for hvc is the *next* instruction.
                    let info = self.enter_el2(
                        cpu,
                        TrapKind::Hvc,
                        esr::build(esr::EC_HVC64, imm as u64),
                        0,
                        0,
                        next_pc,
                    );
                    hyp.handle_sync(self, cpu, info);
                    self.eret_from_el2(cpu);
                    next_pc = self.cores[cpu].pc;
                }
            }
            Instr::Svc(imm) => {
                let el = self.cores[cpu].pstate.el;
                let esr_v = esr::build(esr::EC_SVC64, imm as u64);
                if el == 0 && self.hw_hcr(cpu) & hcr::TGE != 0 {
                    let info = self.enter_el2(cpu, TrapKind::Svc, esr_v, 0, 0, next_pc);
                    hyp.handle_sync(self, cpu, info);
                    self.eret_from_el2(cpu);
                } else {
                    self.enter_el1(cpu, esr_v, 0, next_pc, false);
                }
                next_pc = self.cores[cpu].pc;
            }
            Instr::Smc(imm) => {
                let el = self.cores[cpu].pstate.el;
                if el >= 1 && self.hw_hcr(cpu) & hcr::TSC != 0 {
                    let info = self.enter_el2(
                        cpu,
                        TrapKind::Smc,
                        esr::build(esr::EC_SMC64, imm as u64),
                        0,
                        0,
                        pc,
                    );
                    hyp.handle_sync(self, cpu, info);
                    self.eret_from_el2(cpu);
                } else {
                    // No EL3: UNDEFINED.
                    self.enter_el1(cpu, esr::build(esr::EC_UNKNOWN, 0), 0, pc, false);
                }
                next_pc = self.cores[cpu].pc;
            }
            Instr::Eret => {
                let el = self.cores[cpu].pstate.el;
                if el == 1 && self.nv_active(cpu) {
                    // eret from virtual EL2 traps (ARMv8.3-NV); the host
                    // enters the nested VM on the guest hypervisor's
                    // behalf (paper Section 4).
                    let info =
                        self.enter_el2(cpu, TrapKind::Eret, esr::build(esr::EC_ERET, 0), 0, 0, pc);
                    hyp.handle_sync(self, cpu, info);
                    self.eret_from_el2(cpu);
                    next_pc = self.cores[cpu].pc;
                } else if el >= 1 {
                    let c = eret_c;
                    self.counter.charge(Event::EretNative, c);
                    let (elr_reg, spsr_reg) = (SysReg::ElrEl1, SysReg::SpsrEl1);
                    let elr = self.cores[cpu].regs.read(elr_reg);
                    let spsr = self.cores[cpu].regs.read(spsr_reg);
                    let mut target = Pstate::from_spsr(spsr);
                    // An EL1 eret cannot raise the EL.
                    if el == 1 && target.el > 1 {
                        target.el = 1;
                    }
                    self.cores[cpu].pstate = target;
                    next_pc = elr;
                } else {
                    self.enter_el1(cpu, esr::build(esr::EC_UNKNOWN, 0), 0, pc, false);
                    next_pc = self.cores[cpu].pc;
                }
            }
            Instr::MrsSpecial(rd, sp) => {
                self.counter.charge(Event::SysRegRead, sread_c);
                let v = match sp {
                    Special::CurrentEl => {
                        let el = self.cores[cpu].pstate.el;
                        // The NV disguise (paper Section 2): a
                        // deprivileged hypervisor reads EL2.
                        let shown = if el == 1 && self.nv_active(cpu) {
                            2
                        } else {
                            el
                        };
                        (shown as u64) << 2
                    }
                    Special::CntVct => {
                        let now = self.counter.cycles();
                        self.timers.cntvct(cpu, now)
                    }
                    Special::CntPct => self.counter.cycles(),
                };
                self.cores[cpu].set_gpr(rd, v);
            }
            Instr::Mrs(rd, id) => {
                self.counter.charge(Event::SysRegRead, sread_c);
                match self.route_sysreg(cpu, id, false, 0, rd) {
                    RouteOutcome::Done(v) => {
                        // GIC acknowledge/EOI complete in hardware at the
                        // virtual interface: charge the direct-IRQ cost.
                        if matches!(id.base_reg(), SysReg::IccIar1El1) {
                            let c = dirq_c;
                            self.counter.charge(Event::DirectIrqOp, c);
                        }
                        self.cores[cpu].set_gpr(rd, v);
                    }
                    RouteOutcome::TrapEl2(kind, esr_v) => {
                        let info = self.enter_el2(cpu, kind, esr_v, 0, 0, pc);
                        hyp.handle_sync(self, cpu, info);
                        self.eret_from_el2(cpu);
                        next_pc = self.cores[cpu].pc;
                    }
                    RouteOutcome::UndefEl1 => {
                        self.enter_el1(cpu, esr::build(esr::EC_UNKNOWN, 0), 0, pc, false);
                        next_pc = self.cores[cpu].pc;
                    }
                }
            }
            Instr::Msr(id, rs) => {
                self.counter.charge(Event::SysRegWrite, swrite_c);
                let v = self.cores[cpu].gpr(rs);
                match self.route_sysreg(cpu, id, true, v, rs) {
                    RouteOutcome::Done(_) => {
                        if matches!(id.base_reg(), SysReg::IccEoir1El1 | SysReg::IccDirEl1) {
                            let c = dirq_c;
                            self.counter.charge(Event::DirectIrqOp, c);
                        }
                    }
                    RouteOutcome::TrapEl2(kind, esr_v) => {
                        let info = self.enter_el2(cpu, kind, esr_v, 0, 0, pc);
                        hyp.handle_sync(self, cpu, info);
                        self.eret_from_el2(cpu);
                        next_pc = self.cores[cpu].pc;
                    }
                    RouteOutcome::UndefEl1 => {
                        self.enter_el1(cpu, esr::build(esr::EC_UNKNOWN, 0), 0, pc, false);
                        next_pc = self.cores[cpu].pc;
                    }
                }
            }
            Instr::Ldr(rd, rn, off) => {
                let va = self.cores[cpu].gpr(rn).wrapping_add_signed(off);
                match self.data_access(cpu, hyp, va, false, rd) {
                    Some(v) => self.cores[cpu].set_gpr(rd, v),
                    None => next_pc = self.cores[cpu].pc,
                }
            }
            Instr::Str(rs, rn, off) => {
                let va = self.cores[cpu].gpr(rn).wrapping_add_signed(off);
                match self.data_access(cpu, hyp, va, true, rs) {
                    Some(_) => {}
                    None => next_pc = self.cores[cpu].pc,
                }
            }
        }

        self.cores[cpu].pc = next_pc;
        StepOutcome::Executed
    }

    // ------------------------------------------------------------------
    // The micro-op engine.
    // ------------------------------------------------------------------

    /// Fetches the micro-op at `pc` through `cpu`'s fetch hint. The
    /// compiled list is index-parallel to `programs`, so the hints are
    /// shared with the interpreter's [`Machine::fetch`].
    #[inline]
    fn fetch_uop(&self, cpu: usize, pc: u64) -> Option<Uop> {
        let hint = &self.fetch_hints[cpu];
        if let Some(p) = self.compiled.get(hint.get()) {
            if let Some(u) = p.fetch(pc) {
                return Some(u);
            }
        }
        let idx = self
            .compiled
            .partition_point(|p| p.base <= pc)
            .checked_sub(1)?;
        let u = self.compiled[idx].fetch(pc)?;
        hint.set(idx);
        Some(u)
    }

    /// True while `cpu`'s cached quiet-window verdict still proves the
    /// interrupt poll would find nothing: every input
    /// [`Machine::poll_interrupts`] reads is either compared directly
    /// (EL, interrupt mask, `HCR_EL2`, distributor enable) or covered
    /// by a mutation epoch (timers, GIC), and the cycle counter is
    /// still short of the earliest armed timer deadline.
    #[inline]
    fn quiet_valid(&self, cpu: usize) -> bool {
        let q = &self.quiet[cpu];
        let cycles = self.counter.cycles();
        q.valid
            && cycles >= q.since
            && cycles < q.until
            && self.timers.epoch() == q.timers_epoch
            && self.gic.epoch() == q.gic_epoch
            && self.cores[cpu].pstate.el == q.el
            && self.cores[cpu].pstate.irq_masked == q.irq_masked
            && self.gic.dist.enabled == q.dist_enabled
            && self.hw_hcr(cpu) == q.hcr
    }

    /// Caches a quiet-window verdict for `cpu`; call only immediately
    /// after a full poll returned false (so "nothing deliverable now"
    /// is known to hold at the current state).
    fn establish_quiet(&mut self, cpu: usize) {
        let now = self.counter.cycles();
        self.quiet[cpu] = PollQuiet {
            valid: true,
            since: now,
            until: self.timers.next_fire_at(cpu, now),
            timers_epoch: self.timers.epoch(),
            gic_epoch: self.gic.epoch(),
            el: self.cores[cpu].pstate.el,
            irq_masked: self.cores[cpu].pstate.irq_masked,
            dist_enabled: self.gic.dist.enabled,
            hcr: self.hw_hcr(cpu),
        };
    }

    /// One step through the pre-decoded micro-op IR. Semantically
    /// identical to [`Machine::step_interp`] with no observers
    /// attached: same instruction stream, same cycle charges, same
    /// interrupt delivery points — the engine-lockstep proptests and
    /// the oracle harness hold it to that.
    fn step_uop(&mut self, hyp: &mut dyn Hypervisor, cpu: usize) -> StepOutcome {
        if let Some(code) = self.cores[cpu].halted {
            return StepOutcome::Halted(code);
        }
        self.steps += 1;
        if !self.quiet_valid(cpu) {
            if self.poll_interrupts(cpu, hyp) {
                return StepOutcome::Executed;
            }
            self.establish_quiet(cpu);
        }
        if self.cores[cpu].wfi {
            self.counter.advance(0);
            return StepOutcome::Wfi;
        }

        let pc = self.cores[cpu].pc;
        let Some(u) = self.fetch_uop(cpu, pc) else {
            return StepOutcome::FetchFailure(pc);
        };
        let mut next_pc = pc + 4;
        match u {
            Uop::Nop { c } | Uop::Work { c } => self.counter.charge(Event::Instr, c),
            Uop::MovImm { rd, imm, c } => {
                self.counter.charge(Event::Instr, c);
                self.cores[cpu].set_gpr(rd, imm);
            }
            Uop::Mov { rd, rn, c } => {
                self.counter.charge(Event::Instr, c);
                let v = self.cores[cpu].gpr(rn);
                self.cores[cpu].set_gpr(rd, v);
            }
            Uop::Add { rd, rn, rm, c } => {
                self.counter.charge(Event::Instr, c);
                let v = self.cores[cpu]
                    .gpr(rn)
                    .wrapping_add(self.cores[cpu].gpr(rm));
                self.cores[cpu].set_gpr(rd, v);
            }
            Uop::AddImm { rd, rn, imm, c } => {
                self.counter.charge(Event::Instr, c);
                let v = self.cores[cpu].gpr(rn).wrapping_add(imm);
                self.cores[cpu].set_gpr(rd, v);
            }
            Uop::Sub { rd, rn, rm, c } => {
                self.counter.charge(Event::Instr, c);
                let v = self.cores[cpu]
                    .gpr(rn)
                    .wrapping_sub(self.cores[cpu].gpr(rm));
                self.cores[cpu].set_gpr(rd, v);
            }
            Uop::SubImm { rd, rn, imm, c } => {
                self.counter.charge(Event::Instr, c);
                let v = self.cores[cpu].gpr(rn).wrapping_sub(imm);
                self.cores[cpu].set_gpr(rd, v);
            }
            Uop::And { rd, rn, rm, c } => {
                self.counter.charge(Event::Instr, c);
                let v = self.cores[cpu].gpr(rn) & self.cores[cpu].gpr(rm);
                self.cores[cpu].set_gpr(rd, v);
            }
            Uop::Orr { rd, rn, rm, c } => {
                self.counter.charge(Event::Instr, c);
                let v = self.cores[cpu].gpr(rn) | self.cores[cpu].gpr(rm);
                self.cores[cpu].set_gpr(rd, v);
            }
            Uop::OrrImm { rd, rn, imm, c } => {
                self.counter.charge(Event::Instr, c);
                let v = self.cores[cpu].gpr(rn) | imm;
                self.cores[cpu].set_gpr(rd, v);
            }
            Uop::LslImm { rd, rn, sh, c } => {
                self.counter.charge(Event::Instr, c);
                let v = self.cores[cpu].gpr(rn).wrapping_shl(u32::from(sh));
                self.cores[cpu].set_gpr(rd, v);
            }
            Uop::LsrImm { rd, rn, sh, c } => {
                self.counter.charge(Event::Instr, c);
                let v = self.cores[cpu].gpr(rn).wrapping_shr(u32::from(sh));
                self.cores[cpu].set_gpr(rd, v);
            }
            Uop::B { target, c, .. } => {
                self.counter.charge(Event::Instr, c);
                next_pc = target;
            }
            Uop::Bl { target, c, .. } => {
                self.counter.charge(Event::Instr, c);
                self.cores[cpu].set_gpr(crate::isa::LR, next_pc);
                next_pc = target;
            }
            Uop::Ret { c } => {
                self.counter.charge(Event::Instr, c);
                next_pc = self.cores[cpu].gpr(crate::isa::LR);
            }
            Uop::Cbz { rn, target, c, .. } => {
                self.counter.charge(Event::Instr, c);
                if self.cores[cpu].gpr(rn) == 0 {
                    next_pc = target;
                }
            }
            Uop::Cbnz { rn, target, c, .. } => {
                self.counter.charge(Event::Instr, c);
                if self.cores[cpu].gpr(rn) != 0 {
                    next_pc = target;
                }
            }
            Uop::Barrier { c } => self.counter.charge(Event::Barrier, c),
            Uop::Halt { code } => {
                self.cores[cpu].halted = Some(code);
                return StepOutcome::Halted(code);
            }
            Uop::Slow(instr) => return self.exec_instr(hyp, cpu, pc, instr),
        }

        self.cores[cpu].pc = next_pc;
        StepOutcome::Executed
    }

    /// Runs `cpu` until it halts, idles, or `max_steps` instructions
    /// retire. Returns the last outcome.
    pub fn run(&mut self, hyp: &mut dyn Hypervisor, cpu: usize, max_steps: u64) -> StepOutcome {
        let mut last = StepOutcome::Executed;
        for _ in 0..max_steps {
            last = self.step(hyp, cpu);
            match last {
                StepOutcome::Executed => continue,
                _ => break,
            }
        }
        last
    }
}
