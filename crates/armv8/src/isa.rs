//! The interpreted instruction set and assembler.
//!
//! Guest software is expressed as structured instructions rather than
//! machine encodings; the semantics (and, crucially, the *trap*
//! semantics) are architectural. Instructions occupy 4 bytes of address
//! space each, so vector-table offsets (`VBAR + 0x400` etc.) work exactly
//! as on hardware.

use neve_sysreg::RegId;
use std::sync::Arc;

/// Number of general-purpose registers (x0-x30; x30 is the link register).
pub const NUM_GPRS: usize = 31;

/// The link register index.
pub const LR: u8 = 30;

/// Special (non-`RegFile`) system registers readable via `mrs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Special {
    /// `CurrentEL` — disguised under nested virtualization (paper
    /// Section 2: ARMv8.3 "tells the guest hypervisor that it runs in EL2
    /// if it reads the CurrentEL register").
    CurrentEl,
    /// `CNTVCT_EL0` — virtual counter (physical minus `CNTVOFF_EL2`).
    CntVct,
    /// `CNTPCT_EL0` — physical counter.
    CntPct,
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `mov xd, #imm`.
    MovImm(u8, u64),
    /// `mov xd, xn`.
    Mov(u8, u8),
    /// `add xd, xn, xm`.
    Add(u8, u8, u8),
    /// `add xd, xn, #imm`.
    AddImm(u8, u8, u64),
    /// `sub xd, xn, xm`.
    Sub(u8, u8, u8),
    /// `sub xd, xn, #imm`.
    SubImm(u8, u8, u64),
    /// `and xd, xn, xm`.
    And(u8, u8, u8),
    /// `orr xd, xn, xm`.
    Orr(u8, u8, u8),
    /// `orr xd, xn, #imm`.
    OrrImm(u8, u8, u64),
    /// `lsl xd, xn, #sh`.
    LslImm(u8, u8, u8),
    /// `lsr xd, xn, #sh`.
    LsrImm(u8, u8, u8),
    /// `ldr xd, [xn, #off]` — virtual address load.
    Ldr(u8, u8, i64),
    /// `str xs, [xn, #off]` — virtual address store.
    Str(u8, u8, i64),
    /// `mrs xd, <sysreg>`.
    Mrs(u8, RegId),
    /// `msr <sysreg>, xs`.
    Msr(RegId, u8),
    /// `mrs xd, <special>`.
    MrsSpecial(u8, Special),
    /// `hvc #imm16`.
    Hvc(u16),
    /// `svc #imm16`.
    Svc(u16),
    /// `smc #imm16`.
    Smc(u16),
    /// `eret`.
    Eret,
    /// `isb`.
    Isb,
    /// `dsb sy`.
    Dsb,
    /// `tlbi vmalls12e1is` — invalidate the current VMID's entries.
    TlbiVmall,
    /// `wfi`.
    Wfi,
    /// `nop`.
    Nop,
    /// `b <addr>`.
    B(u64),
    /// `bl <addr>` — branch and link (x30).
    Bl(u64),
    /// `ret` — branch to x30.
    Ret,
    /// `cbz xn, <addr>`.
    Cbz(u8, u64),
    /// `cbnz xn, <addr>`.
    Cbnz(u8, u64),
    /// Modelled straight-line work of `n` cycles (stands in for ALU-heavy
    /// code sequences; charged as generic instructions, no side effects).
    Work(u64),
    /// Stop the harness: a test payload signalling completion. Carries a
    /// 16-bit code the embedder interprets.
    Halt(u16),
}

/// A resolved program: instructions at `base + 4*i`.
#[derive(Debug, Clone)]
pub struct Program {
    /// Load (virtual) address of the first instruction.
    pub base: u64,
    /// The instructions.
    pub code: Arc<[Instr]>,
}

impl Program {
    /// The instruction at virtual address `addr`, if inside the program.
    pub fn fetch(&self, addr: u64) -> Option<Instr> {
        if addr < self.base || !(addr - self.base).is_multiple_of(4) {
            return None;
        }
        self.code.get(((addr - self.base) / 4) as usize).copied()
    }

    /// Address one past the last instruction.
    pub fn end(&self) -> u64 {
        self.base + 4 * self.code.len() as u64
    }

    /// Instruction count.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the program is empty.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// The assembler: collects instructions and resolves labels.
///
/// # Examples
///
/// ```
/// use neve_armv8::isa::{Asm, Instr};
///
/// let mut a = Asm::new(0x1000);
/// let loop_top = a.label();
/// a.i(Instr::MovImm(0, 10));
/// a.bind(loop_top);
/// a.i(Instr::SubImm(0, 0, 1));
/// a.cbnz(0, loop_top);
/// a.i(Instr::Halt(0));
/// let prog = a.assemble();
/// assert_eq!(prog.base, 0x1000);
/// assert_eq!(prog.len(), 4);
/// ```
#[derive(Debug)]
pub struct Asm {
    base: u64,
    code: Vec<Instr>,
    labels: Vec<Option<u64>>,
    fixups: Vec<(usize, Label)>,
}

impl Asm {
    /// Starts a program at virtual address `base` (4-byte aligned).
    pub fn new(base: u64) -> Self {
        assert_eq!(base % 4, 0, "program base must be 4-byte aligned");
        Self {
            base,
            code: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Emits one instruction.
    pub fn i(&mut self, instr: Instr) -> &mut Self {
        self.code.push(instr);
        self
    }

    /// Current emission address.
    pub fn here(&self) -> u64 {
        self.base + 4 * self.code.len() as u64
    }

    /// Creates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current address.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.here());
    }

    /// Pads with `nop` until the emission address is `base + offset`
    /// (used to lay out vector tables at architectural offsets).
    ///
    /// # Panics
    ///
    /// Panics if the current address is already past the target.
    pub fn org(&mut self, offset: u64) {
        let target = self.base + offset;
        assert!(
            self.here() <= target,
            "org {offset:#x}: already at {:#x}",
            self.here()
        );
        while self.here() < target {
            self.code.push(Instr::Nop);
        }
    }

    /// `b label` (forward references allowed).
    pub fn b(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::B(0));
        self
    }

    /// `bl label`.
    pub fn bl(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::Bl(0));
        self
    }

    /// `cbz xn, label`.
    pub fn cbz(&mut self, rn: u8, label: Label) -> &mut Self {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::Cbz(rn, 0));
        self
    }

    /// `cbnz xn, label`.
    pub fn cbnz(&mut self, rn: u8, label: Label) -> &mut Self {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::Cbnz(rn, 0));
        self
    }

    /// Resolves all labels and produces the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn assemble(mut self) -> Program {
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let addr = self.labels[label.0].expect("unbound label referenced");
            match &mut self.code[idx] {
                Instr::B(a) | Instr::Bl(a) | Instr::Cbz(_, a) | Instr::Cbnz(_, a) => *a = addr,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        Program {
            base: self.base,
            code: self.code.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neve_sysreg::SysReg;

    #[test]
    fn fetch_maps_addresses_to_instructions() {
        let mut a = Asm::new(0x1000);
        a.i(Instr::Nop).i(Instr::MovImm(1, 42));
        let p = a.assemble();
        assert_eq!(p.fetch(0x1000), Some(Instr::Nop));
        assert_eq!(p.fetch(0x1004), Some(Instr::MovImm(1, 42)));
        assert_eq!(p.fetch(0x1008), None);
        assert_eq!(p.fetch(0x0fff), None);
        assert_eq!(p.fetch(0x1002), None, "unaligned");
        assert_eq!(p.end(), 0x1008);
    }

    #[test]
    fn forward_labels_resolve() {
        let mut a = Asm::new(0);
        let target = a.label();
        a.b(target);
        a.i(Instr::Nop);
        a.bind(target);
        a.i(Instr::Halt(0));
        let p = a.assemble();
        assert_eq!(p.fetch(0), Some(Instr::B(8)));
    }

    #[test]
    fn backward_labels_resolve() {
        let mut a = Asm::new(0x100);
        let top = a.label();
        a.bind(top);
        a.i(Instr::SubImm(0, 0, 1));
        a.cbnz(0, top);
        let p = a.assemble();
        assert_eq!(p.fetch(0x104), Some(Instr::Cbnz(0, 0x100)));
    }

    #[test]
    fn org_pads_to_vector_offsets() {
        let mut a = Asm::new(0x2000);
        a.i(Instr::Nop);
        a.org(0x400);
        a.i(Instr::Mrs(0, RegId::Plain(SysReg::EsrEl1)));
        let p = a.assemble();
        assert_eq!(
            p.fetch(0x2400),
            Some(Instr::Mrs(0, RegId::Plain(SysReg::EsrEl1)))
        );
        assert_eq!(p.fetch(0x2004), Some(Instr::Nop));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics_at_assemble() {
        let mut a = Asm::new(0);
        let l = a.label();
        a.b(l);
        a.assemble();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new(0);
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }
}
