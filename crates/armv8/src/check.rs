//! Opt-in checked mode: architectural invariant validation.
//!
//! A [`Checker`] attached to a machine (see `Machine::attach_checker`)
//! validates step invariants the rest of the simulator *assumes*:
//!
//! - **EL transition legality** — traps to EL2 only come from EL0/EL1
//!   (the host hypervisor is native, so EL2 never traps into itself),
//!   exceptions to EL1 only from EL0/EL1, and the host's `eret` only
//!   lowers the level back into guest context.
//! - **`VNCR_EL2` write discipline** — the register is host-managed
//!   (paper Section 6.1): rewrites are only legal from EL2, i.e. inside
//!   a trap window; and raw writes carrying reserved/out-of-range BADDR
//!   bits are flagged even though the hardware RES0s them.
//! - **Stage-2 structural integrity** — every root descriptor of the
//!   live `VTTBR_EL2` table that covers populated RAM is either invalid
//!   or a well-formed next-table pointer. Checked *every step*, which
//!   is what lets the fault-injection oracle pin a corrupted shadow
//!   table to the exact step the corruption appeared.
//! - **TLB coherence** — at trap sync points, cached translations of
//!   the live Stage-2 regime still agree with a fresh table walk.
//!
//! Like the trace and fault layers, the checker is pure observability:
//! it charges no cycles and, when detached (the default), every hook is
//! a single `Option` test — measured runs are bit-identical with and
//! without the module compiled in.

/// What kind of invariant a violation breached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// An exception-level transition the machine model forbids.
    IllegalElTransition,
    /// `VNCR_EL2` was rewritten from a non-EL2 context.
    VncrWriteOutsideEl2,
    /// A raw `VNCR_EL2` write carried reserved or out-of-range BADDR
    /// bits (the hardware RES0s them; the write was almost certainly a
    /// host bug).
    VncrReservedBits,
    /// The live Stage-2 table has a structurally impossible descriptor.
    MalformedStage2,
    /// A cached TLB translation disagrees with a fresh walk of the
    /// live tables.
    TlbIncoherent,
}

impl ViolationKind {
    /// Stable machine-readable label (report/JSON output).
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::IllegalElTransition => "illegal-el-transition",
            ViolationKind::VncrWriteOutsideEl2 => "vncr-write-outside-el2",
            ViolationKind::VncrReservedBits => "vncr-reserved-bits",
            ViolationKind::MalformedStage2 => "malformed-stage2",
            ViolationKind::TlbIncoherent => "tlb-incoherent",
        }
    }
}

/// One recorded invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Machine step count when the violation was observed.
    pub step: u64,
    /// CPU the check ran on.
    pub cpu: usize,
    /// Invariant breached.
    pub kind: ViolationKind,
    /// Human-readable specifics (addresses, descriptors, levels).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {} cpu{}: {}: {}",
            self.step,
            self.cpu,
            self.kind.label(),
            self.detail
        )
    }
}

/// Bounded violation log. A persistent corruption re-fires every step,
/// so the log caps retention; the *first* entry carries the step the
/// oracle asserts on.
#[derive(Debug, Default)]
pub struct Checker {
    violations: Vec<Violation>,
    /// Total violations observed, including ones dropped by the cap.
    pub total: u64,
}

/// Retained violations (the first is the one that matters; the rest
/// are context).
pub const MAX_VIOLATIONS: usize = 64;

impl Checker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a violation (dropped beyond [`MAX_VIOLATIONS`]; the
    /// total keeps counting).
    pub fn record(&mut self, v: Violation) {
        self.total += 1;
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        }
    }

    /// The retained violations, oldest first.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True when no invariant has been breached.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// The first violation observed, if any.
    pub fn first(&self) -> Option<&Violation> {
        self.violations.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(step: u64, kind: ViolationKind) -> Violation {
        Violation {
            step,
            cpu: 0,
            kind,
            detail: "x".into(),
        }
    }

    #[test]
    fn cap_keeps_first_violations_and_counts_all() {
        let mut c = Checker::new();
        assert!(c.is_clean());
        for i in 0..(MAX_VIOLATIONS as u64 + 10) {
            c.record(v(i, ViolationKind::MalformedStage2));
        }
        assert!(!c.is_clean());
        assert_eq!(c.violations().len(), MAX_VIOLATIONS);
        assert_eq!(c.total, MAX_VIOLATIONS as u64 + 10);
        assert_eq!(c.first().unwrap().step, 0, "first violation is retained");
    }

    #[test]
    fn display_carries_step_and_kind() {
        let s = v(42, ViolationKind::TlbIncoherent).to_string();
        assert!(s.contains("42"), "{s}");
        assert!(s.contains("tlb-incoherent"), "{s}");
    }

    #[test]
    fn labels_are_distinct() {
        let all = [
            ViolationKind::IllegalElTransition,
            ViolationKind::VncrWriteOutsideEl2,
            ViolationKind::VncrReservedBits,
            ViolationKind::MalformedStage2,
            ViolationKind::TlbIncoherent,
        ];
        let set: std::collections::HashSet<_> = all.iter().map(|k| k.label()).collect();
        assert_eq!(set.len(), all.len());
    }
}
