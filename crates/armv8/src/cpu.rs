//! Per-core architectural state.

use crate::isa::NUM_GPRS;
use crate::pstate::Pstate;
use neve_core::NeveEngine;
use neve_sysreg::RegFile;

/// One CPU core's state.
///
/// System registers live in [`CoreState::regs`]; GIC and timer registers
/// are owned by their device models and reached through the machine's
/// access routing, mirroring how a real core's system-register transport
/// targets the external interrupt controller and counter blocks.
#[derive(Debug, Default)]
pub struct CoreState {
    /// General-purpose registers x0-x30.
    pub gprs: [u64; NUM_GPRS],
    /// Program counter (a virtual address into loaded [`crate::isa::Program`]s).
    pub pc: u64,
    /// Processor state.
    pub pstate: Pstate,
    /// System registers.
    pub regs: RegFile,
    /// The NEVE engine (consulted when `HCR_EL2.NV2` is set).
    pub neve: NeveEngine,
    /// Core is halted waiting for an interrupt (`wfi`).
    pub wfi: bool,
    /// Core executed [`crate::isa::Instr::Halt`]; holds the code.
    pub halted: Option<u16>,
}

impl Clone for CoreState {
    fn clone(&self) -> Self {
        Self {
            gprs: self.gprs,
            pc: self.pc,
            pstate: self.pstate,
            regs: self.regs.clone(),
            neve: self.neve,
            wfi: self.wfi,
            halted: self.halted,
        }
    }

    /// Allocation-free (delegates to [`RegFile::clone_from`]); snapshot
    /// restores run this per core on every fuzz case.
    fn clone_from(&mut self, source: &Self) {
        self.gprs = source.gprs;
        self.pc = source.pc;
        self.pstate = source.pstate;
        self.regs.clone_from(&source.regs);
        self.neve.clone_from(&source.neve);
        self.wfi = source.wfi;
        self.halted = source.halted;
    }
}

impl CoreState {
    /// Creates a core at reset (EL2, pc 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a GPR (x31 reads as zero, matching xzr).
    pub fn gpr(&self, n: u8) -> u64 {
        if (n as usize) < NUM_GPRS {
            self.gprs[n as usize]
        } else {
            0
        }
    }

    /// Writes a GPR (writes to x31 are discarded).
    pub fn set_gpr(&mut self, n: u8, v: u64) {
        if (n as usize) < NUM_GPRS {
            self.gprs[n as usize] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xzr_semantics() {
        let mut c = CoreState::new();
        c.set_gpr(31, 123);
        assert_eq!(c.gpr(31), 0);
        c.set_gpr(5, 7);
        assert_eq!(c.gpr(5), 7);
    }

    #[test]
    fn reset_is_el2() {
        let c = CoreState::new();
        assert_eq!(c.pstate.el, 2);
        assert!(!c.wfi);
        assert!(c.halted.is_none());
    }
}
