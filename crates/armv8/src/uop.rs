//! Decode-once micro-op IR.
//!
//! [`Machine::load`](crate::machine::Machine::load) pre-decodes each
//! program into a flat array of micro-ops ([`Uop`]) partitioned into
//! basic blocks ([`Block`]):
//!
//! - cost-table values are baked into every fast micro-op at decode
//!   time (re-baked when the cost model changes), so the hot execute
//!   loop never consults the table;
//! - branch targets are resolved to block indices (and absolute target
//!   pcs) at decode time, so taken branches never re-scan the program
//!   list;
//! - anything that can trap, change exception level, or touch
//!   interrupt-delivery state ([`Uop::Slow`]) *terminates* its block,
//!   so within a block the machine's trap/interrupt inputs are frozen —
//!   which is what lets the executor hoist the per-step interrupt poll
//!   behind a cached quiet-window check (see `Machine::step_uop`).
//!
//! The micro-op executor is a pure acceleration layer: it must retire
//! the same instruction stream with the same cycle charges as the
//! reference interpreter (`Machine::step_interp`), which stays the
//! oracle. Whenever an observer attaches — a trace, a
//! [`FaultPlan`](crate::fault::FaultPlan), a
//! [`Checker`](crate::check::Checker) — the machine falls back to the
//! interpreter, so checked and fault-injected runs exercise the
//! reference semantics directly.

use crate::isa::{Instr, Program};
use neve_cycles::{CostTable, Event};

/// Which execution engine [`Machine::step`](crate::machine::Machine::step)
/// dispatches through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Pre-decoded micro-op IR (the default). Falls back to the
    /// interpreter automatically while a trace, fault plan or checker
    /// is attached.
    #[default]
    Uop,
    /// The reference interpreter, always.
    Interp,
}

/// A basic block: a half-open range of micro-op indices.
///
/// Block boundaries fall at the program start, at branch targets, after
/// control flow, and after every [`Uop::Slow`] micro-op. Within a block
/// nothing can trap or alter interrupt-delivery state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// First micro-op index.
    pub start: u32,
    /// One past the last micro-op index.
    pub end: u32,
}

/// Marker for a branch whose target lies outside its own program (it
/// resolves through the general fetch path at run time).
pub const EXTERNAL_BLOCK: u32 = u32::MAX;

/// One micro-op. Fast variants carry their cycle charge `c` baked in;
/// branch variants additionally carry the resolved target block index
/// (or [`EXTERNAL_BLOCK`]) and absolute target pc. Everything that can
/// trap or touch interrupt state is wrapped as [`Uop::Slow`] and
/// executed through the shared interpreter arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uop {
    /// `nop`.
    Nop { c: u64 },
    /// `Instr::Work(n)`: one `Instr` event of `n * instr_cost` cycles,
    /// pre-multiplied at decode time.
    Work { c: u64 },
    /// `mov xd, #imm`.
    MovImm { rd: u8, imm: u64, c: u64 },
    /// `mov xd, xn`.
    Mov { rd: u8, rn: u8, c: u64 },
    /// `add xd, xn, xm`.
    Add { rd: u8, rn: u8, rm: u8, c: u64 },
    /// `add xd, xn, #imm`.
    AddImm { rd: u8, rn: u8, imm: u64, c: u64 },
    /// `sub xd, xn, xm`.
    Sub { rd: u8, rn: u8, rm: u8, c: u64 },
    /// `sub xd, xn, #imm`.
    SubImm { rd: u8, rn: u8, imm: u64, c: u64 },
    /// `and xd, xn, xm`.
    And { rd: u8, rn: u8, rm: u8, c: u64 },
    /// `orr xd, xn, xm`.
    Orr { rd: u8, rn: u8, rm: u8, c: u64 },
    /// `orr xd, xn, #imm`.
    OrrImm { rd: u8, rn: u8, imm: u64, c: u64 },
    /// `lsl xd, xn, #sh`.
    LslImm { rd: u8, rn: u8, sh: u8, c: u64 },
    /// `lsr xd, xn, #sh`.
    LsrImm { rd: u8, rn: u8, sh: u8, c: u64 },
    /// `b <target>`.
    B { block: u32, target: u64, c: u64 },
    /// `bl <target>` (links x30).
    Bl { block: u32, target: u64, c: u64 },
    /// `ret` (target is x30; no static block).
    Ret { c: u64 },
    /// `cbz xn, <target>`.
    Cbz {
        rn: u8,
        block: u32,
        target: u64,
        c: u64,
    },
    /// `cbnz xn, <target>`.
    Cbnz {
        rn: u8,
        block: u32,
        target: u64,
        c: u64,
    },
    /// `isb` / `dsb sy`: a `Barrier` event.
    Barrier { c: u64 },
    /// `Instr::Halt`: stops the core without retiring a pc update.
    Halt { code: u16 },
    /// Anything that can trap, fault, change EL or touch interrupt
    /// state: executed through the interpreter's instruction arm.
    Slow(Instr),
}

/// A program pre-decoded to micro-ops.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Load address of the first micro-op (same as the source program).
    pub base: u64,
    /// One past the last instruction address.
    pub end: u64,
    uops: Box<[Uop]>,
    blocks: Box<[Block]>,
}

impl CompiledProgram {
    /// The micro-op at virtual address `pc`, if inside the program.
    /// Mirrors [`Program::fetch`]: misaligned or out-of-range addresses
    /// miss.
    #[inline]
    pub fn fetch(&self, pc: u64) -> Option<Uop> {
        if pc < self.base {
            return None;
        }
        let off = pc - self.base;
        if off & 3 != 0 {
            return None;
        }
        self.uops.get((off >> 2) as usize).copied()
    }

    /// The decoded micro-ops.
    pub fn uops(&self) -> &[Uop] {
        &self.uops
    }

    /// The basic blocks (half-open micro-op index ranges).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block containing micro-op index `idx`.
    pub fn block_of(&self, idx: u32) -> Option<Block> {
        let b = self.blocks.partition_point(|b| b.start <= idx);
        let blk = *self.blocks.get(b.checked_sub(1)?)?;
        (idx < blk.end).then_some(blk)
    }
}

/// True when the instruction ends a basic block: control flow, halts,
/// and every [`Uop::Slow`] candidate (traps, EL changes, interrupt
/// state).
fn ends_block(i: Instr) -> bool {
    !matches!(
        i,
        Instr::Nop
            | Instr::Work(_)
            | Instr::MovImm(..)
            | Instr::Mov(..)
            | Instr::Add(..)
            | Instr::AddImm(..)
            | Instr::Sub(..)
            | Instr::SubImm(..)
            | Instr::And(..)
            | Instr::Orr(..)
            | Instr::OrrImm(..)
            | Instr::LslImm(..)
            | Instr::LsrImm(..)
            | Instr::Isb
            | Instr::Dsb
    )
}

/// Pre-decodes `prog` against `table`.
///
/// Rebuild whenever the cost model changes — the baked charges must
/// match what the interpreter would charge from the same table.
pub fn compile(prog: &Program, table: &CostTable) -> CompiledProgram {
    let n = prog.code.len();
    let instr_c = table.cost(Event::Instr);
    let barrier_c = table.cost(Event::Barrier);

    // Pass 1: block leaders — program entry, intra-program branch
    // targets, and the instruction after any block terminator.
    let mut leader = vec![false; n + 1];
    leader[0] = true;
    let in_range = |a: u64| -> Option<usize> {
        if a < prog.base || a >= prog.end() || (a - prog.base) & 3 != 0 {
            return None;
        }
        Some(((a - prog.base) >> 2) as usize)
    };
    for (i, &instr) in prog.code.iter().enumerate() {
        match instr {
            Instr::B(a) | Instr::Bl(a) | Instr::Cbz(_, a) | Instr::Cbnz(_, a) => {
                if let Some(t) = in_range(a) {
                    leader[t] = true;
                }
            }
            _ => {}
        }
        if ends_block(instr) {
            leader[i + 1] = true;
        }
    }
    // The program end is an implicit leader so the trailing block is
    // always closed.
    leader[n] = true;

    // Pass 2: blocks from consecutive leaders.
    let mut blocks = Vec::new();
    let mut start = 0u32;
    for (i, &is_leader) in leader.iter().enumerate().skip(1) {
        if is_leader {
            if i as u32 > start {
                blocks.push(Block {
                    start,
                    end: i as u32,
                });
            }
            start = i as u32;
        }
    }
    let blocks: Box<[Block]> = blocks.into();
    let block_of_idx = |idx: usize| -> u32 {
        let p = blocks.partition_point(|b| b.start <= idx as u32);
        (p - 1) as u32
    };

    // Pass 3: micro-ops with costs and branch targets baked in.
    let target = |a: u64| -> u32 {
        match in_range(a) {
            Some(t) => block_of_idx(t),
            None => EXTERNAL_BLOCK,
        }
    };
    let uops: Box<[Uop]> = prog
        .code
        .iter()
        .map(|&instr| match instr {
            Instr::Nop => Uop::Nop { c: instr_c },
            Instr::Work(n) => Uop::Work {
                c: instr_c * n.max(1),
            },
            Instr::MovImm(rd, imm) => Uop::MovImm {
                rd,
                imm,
                c: instr_c,
            },
            Instr::Mov(rd, rn) => Uop::Mov { rd, rn, c: instr_c },
            Instr::Add(rd, rn, rm) => Uop::Add {
                rd,
                rn,
                rm,
                c: instr_c,
            },
            Instr::AddImm(rd, rn, imm) => Uop::AddImm {
                rd,
                rn,
                imm,
                c: instr_c,
            },
            Instr::Sub(rd, rn, rm) => Uop::Sub {
                rd,
                rn,
                rm,
                c: instr_c,
            },
            Instr::SubImm(rd, rn, imm) => Uop::SubImm {
                rd,
                rn,
                imm,
                c: instr_c,
            },
            Instr::And(rd, rn, rm) => Uop::And {
                rd,
                rn,
                rm,
                c: instr_c,
            },
            Instr::Orr(rd, rn, rm) => Uop::Orr {
                rd,
                rn,
                rm,
                c: instr_c,
            },
            Instr::OrrImm(rd, rn, imm) => Uop::OrrImm {
                rd,
                rn,
                imm,
                c: instr_c,
            },
            Instr::LslImm(rd, rn, sh) => Uop::LslImm {
                rd,
                rn,
                sh,
                c: instr_c,
            },
            Instr::LsrImm(rd, rn, sh) => Uop::LsrImm {
                rd,
                rn,
                sh,
                c: instr_c,
            },
            Instr::B(a) => Uop::B {
                block: target(a),
                target: a,
                c: instr_c,
            },
            Instr::Bl(a) => Uop::Bl {
                block: target(a),
                target: a,
                c: instr_c,
            },
            Instr::Ret => Uop::Ret { c: instr_c },
            Instr::Cbz(rn, a) => Uop::Cbz {
                rn,
                block: target(a),
                target: a,
                c: instr_c,
            },
            Instr::Cbnz(rn, a) => Uop::Cbnz {
                rn,
                block: target(a),
                target: a,
                c: instr_c,
            },
            Instr::Isb | Instr::Dsb => Uop::Barrier { c: barrier_c },
            Instr::Halt(code) => Uop::Halt { code },
            slow => Uop::Slow(slow),
        })
        .collect();

    debug_assert!(uops.len() == n);
    // Resolved block indices agree with the baked target pcs.
    #[cfg(debug_assertions)]
    for u in &uops {
        if let Uop::B { block, target, .. }
        | Uop::Bl { block, target, .. }
        | Uop::Cbz { block, target, .. }
        | Uop::Cbnz { block, target, .. } = *u
        {
            if block != EXTERNAL_BLOCK {
                let blk = blocks[block as usize];
                assert_eq!(prog.base + 4 * u64::from(blk.start), target);
            }
        }
    }

    CompiledProgram {
        base: prog.base,
        end: prog.end(),
        uops,
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn prog(base: u64, code: Vec<Instr>) -> Program {
        Program {
            base,
            code: Arc::from(code.as_slice()),
        }
    }

    fn table() -> CostTable {
        CostTable::arm(&neve_cycles::CostModel::default())
    }

    #[test]
    fn straight_line_code_is_one_block() {
        let p = prog(
            0x1000,
            vec![
                Instr::MovImm(0, 1),
                Instr::AddImm(0, 0, 1),
                Instr::Nop,
                Instr::Halt(0),
            ],
        );
        let c = compile(&p, &table());
        assert_eq!(c.blocks().len(), 1);
        assert_eq!(c.blocks()[0], Block { start: 0, end: 4 });
    }

    #[test]
    fn branch_targets_resolve_to_block_indices() {
        // 0x1000: cbz x0, 0x100c ; 0x1004: nop ; 0x1008: b 0x1000 ;
        // 0x100c: halt
        let p = prog(
            0x1000,
            vec![
                Instr::Cbz(0, 0x100c),
                Instr::Nop,
                Instr::B(0x1000),
                Instr::Halt(0),
            ],
        );
        let c = compile(&p, &table());
        // Leaders: 0 (entry), 1 (after cbz), 3 (target of cbz, after b).
        assert_eq!(c.blocks().len(), 3);
        match c.fetch(0x1000).unwrap() {
            Uop::Cbz { block, target, .. } => {
                assert_eq!(target, 0x100c);
                assert_eq!(c.blocks()[block as usize].start, 3);
            }
            u => panic!("expected cbz, got {u:?}"),
        }
        match c.fetch(0x1008).unwrap() {
            Uop::B { block, target, .. } => {
                assert_eq!(target, 0x1000);
                assert_eq!(c.blocks()[block as usize].start, 0);
            }
            u => panic!("expected b, got {u:?}"),
        }
    }

    #[test]
    fn cross_program_branches_are_external() {
        let p = prog(0x1000, vec![Instr::B(0x9000), Instr::Halt(0)]);
        let c = compile(&p, &table());
        match c.fetch(0x1000).unwrap() {
            Uop::B { block, target, .. } => {
                assert_eq!(block, EXTERNAL_BLOCK);
                assert_eq!(target, 0x9000);
            }
            u => panic!("expected b, got {u:?}"),
        }
    }

    #[test]
    fn slow_instructions_terminate_blocks() {
        let p = prog(
            0x1000,
            vec![
                Instr::Nop,
                Instr::Hvc(0),
                Instr::Nop,
                Instr::Eret,
                Instr::Halt(0),
            ],
        );
        let c = compile(&p, &table());
        // Blocks: [nop,hvc] [nop,eret] [halt].
        assert_eq!(c.blocks().len(), 3);
        assert_eq!(c.blocks()[0], Block { start: 0, end: 2 });
        assert_eq!(c.blocks()[1], Block { start: 2, end: 4 });
        assert!(matches!(c.fetch(0x1004), Some(Uop::Slow(Instr::Hvc(0)))));
    }

    #[test]
    fn costs_are_baked_from_the_table() {
        let t = table();
        let p = prog(
            0x1000,
            vec![Instr::Work(7), Instr::Isb, Instr::Nop, Instr::Halt(0)],
        );
        let c = compile(&p, &t);
        assert!(matches!(
            c.fetch(0x1000),
            Some(Uop::Work { c }) if c == t.cost(Event::Instr) * 7
        ));
        assert!(matches!(
            c.fetch(0x1004),
            Some(Uop::Barrier { c }) if c == t.cost(Event::Barrier)
        ));
    }

    #[test]
    fn fetch_mirrors_program_fetch_bounds() {
        let p = prog(0x1000, vec![Instr::Nop, Instr::Halt(0)]);
        let c = compile(&p, &table());
        assert!(c.fetch(0x0ffc).is_none(), "below base");
        assert!(c.fetch(0x1002).is_none(), "misaligned");
        assert!(c.fetch(0x1008).is_none(), "past end");
        assert!(c.fetch(0x1004).is_some());
    }

    #[test]
    fn block_of_locates_indices() {
        let p = prog(
            0x1000,
            vec![Instr::Nop, Instr::Hvc(0), Instr::Nop, Instr::Halt(0)],
        );
        let c = compile(&p, &table());
        assert_eq!(c.block_of(0), Some(Block { start: 0, end: 2 }));
        assert_eq!(c.block_of(1), Some(Block { start: 0, end: 2 }));
        assert_eq!(c.block_of(2), Some(Block { start: 2, end: 4 }));
        assert_eq!(c.block_of(9), None);
    }
}
