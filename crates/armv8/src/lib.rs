//! ARMv8 CPU and machine model for the NEVE simulator.
//!
//! The crate provides the *hardware* the hypervisors in `neve-kvmarm` run
//! on:
//!
//! - [`isa`]: a small AArch64-like instruction set and assembler. Guest
//!   software (guest hypervisors, nested VMs, test payloads) is built as
//!   instruction streams and *interpreted*, so privileged instructions
//!   genuinely execute deprivileged and genuinely trap per the
//!   architecture rules — trap counts in the experiments are emergent,
//!   not constants.
//! - [`pstate`] / [`cpu`]: per-core architectural state.
//! - [`machine`]: the machine — physical memory, GIC, timers, TLB, cycle
//!   accounting, and the run loop. Exceptions *to EL2* invoke native Rust
//!   software (the host hypervisor, via the [`machine::Hypervisor`]
//!   trait); exceptions *to EL1* are pure state mutation, after which the
//!   interpreter simply continues at the guest's vector — the paper's
//!   nested reflection (Section 4) falls out of these two rules.
//!
//! Architecture levels ([`ArchLevel`]) gate the virtualization features
//! exactly as the paper stages them: v8.0 (baseline, hypervisor
//! instructions at EL1 are UNDEFINED), v8.1 (VHE), v8.3 (nested
//! virtualization: trapping, `CurrentEL` disguise), v8.4 (NEVE).

pub mod check;
pub mod cpu;
pub mod fault;
pub mod fuzzgen;
pub mod host;
pub mod isa;
pub mod machine;
pub mod pstate;
pub mod trace;
pub mod uop;

pub use check::{Checker, Violation, ViolationKind};
pub use cpu::CoreState;
pub use fault::{FaultPlan, InjectedFault, Injection, BUILTIN_PLANS};
pub use host::{boot_harness, harness_machine, install_stage2, EmulHyp, SkipHyp};
pub use isa::{Asm, Instr, Label, Program, Special};
pub use machine::{
    ExitInfo, Hypervisor, Machine, MachineConfig, MachineSnapshot, MmioRequest, StepOutcome,
};
pub use pstate::Pstate;
pub use trace::{Trace, TraceEvent};
pub use uop::{CompiledProgram, Engine, Uop};

/// The architecture revision the simulated hardware implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArchLevel {
    /// ARMv8.0: VE only. Hypervisor instructions executed at EL1 are
    /// UNDEFINED (exception *to EL1*), the behaviour the paper's
    /// paravirtualization works around (Section 3).
    V8_0,
    /// ARMv8.1: adds the Virtualization Host Extensions (`HCR_EL2.E2H`).
    V8_1,
    /// ARMv8.3: adds nested virtualization (`HCR_EL2.{NV,NV1}`).
    V8_3,
    /// ARMv8.4: adds NEVE (`HCR_EL2.NV2` + `VNCR_EL2`).
    V8_4,
}

impl ArchLevel {
    /// VHE available (v8.1+).
    pub fn has_vhe(self) -> bool {
        self >= ArchLevel::V8_1
    }

    /// Nested virtualization available (v8.3+).
    pub fn has_nv(self) -> bool {
        self >= ArchLevel::V8_3
    }

    /// NEVE available (v8.4).
    pub fn has_nv2(self) -> bool {
        self >= ArchLevel::V8_4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_levels_are_cumulative() {
        assert!(!ArchLevel::V8_0.has_vhe());
        assert!(ArchLevel::V8_1.has_vhe());
        assert!(!ArchLevel::V8_1.has_nv());
        assert!(ArchLevel::V8_3.has_nv());
        assert!(!ArchLevel::V8_3.has_nv2());
        assert!(ArchLevel::V8_4.has_nv2());
        assert!(ArchLevel::V8_4.has_vhe());
    }
}

#[cfg(test)]
mod machine_tests;
