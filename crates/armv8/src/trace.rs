//! Execution tracing with trap provenance.
//!
//! An optional ring buffer of architectural events, cheap enough to
//! leave compiled in: the machine records nothing unless a trace is
//! attached, and attaching one never charges cycles — the hard
//! invariant is that a traced run measures bit-identically to an
//! untraced one. The `neve trace` command uses this to show the
//! instruction-level anatomy of a nested world switch — the literal
//! sequence Section 5 of the paper describes in prose — with every
//! trap annotated with *why* it was taken (which system register or
//! instruction) and *which world-switch phase* the machine was in.

use crate::isa::Instr;
use neve_cycles::{Phase, TrapKind};
use neve_sysreg::RegId;
use std::collections::VecDeque;

/// Hard cap on retained events; [`Trace::new`] clamps to this. Bounds
/// both the ring allocation and its retention so a huge requested
/// capacity cannot grow memory without limit.
pub const MAX_CAPACITY: usize = 1 << 16;

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An instruction retired.
    Retired {
        /// CPU index.
        cpu: usize,
        /// Address it executed from.
        pc: u64,
        /// Exception level it executed at.
        el: u8,
        /// The instruction.
        instr: Instr,
    },
    /// A trap was taken to EL2 (the host hypervisor ran).
    TrapToEl2 {
        /// CPU index.
        cpu: usize,
        /// Trap classification.
        kind: TrapKind,
        /// Syndrome register value.
        esr: u64,
        /// Faulting/preferred-return address.
        pc: u64,
        /// World-switch phase active when the trap was taken
        /// (provenance: almost always [`Phase::Guest`]).
        phase: Phase,
        /// For system-register traps: the register access that caused
        /// the trap, decoded from the syndrome.
        sysreg: Option<RegId>,
    },
    /// An exception was delivered to EL1 (vectored entry).
    ExceptionToEl1 {
        /// CPU index.
        cpu: usize,
        /// Syndrome value.
        esr: u64,
        /// Vector target.
        vector: u64,
    },
    /// The world-switch phase changed (host hypervisor provenance
    /// marker; carries no cost).
    PhaseChange {
        /// CPU index.
        cpu: usize,
        /// The phase now active.
        phase: Phase,
    },
    /// NEVE rewrote a would-be trap into a deferred access-page slot
    /// access (the engine's `Memory` disposition in action).
    VncrDeferred {
        /// CPU index.
        cpu: usize,
        /// The access that would have trapped on ARMv8.3.
        reg: RegId,
        /// True for a write.
        write: bool,
        /// Byte offset of the slot within the deferred access page.
        offset: u16,
    },
    /// A raw `VNCR_EL2` write carried reserved or out-of-range BADDR
    /// bits; the hardware treated them as RES0 (paper Section 6.1's
    /// register layout). Almost always a host bug worth seeing.
    VncrRawSanitized {
        /// CPU index.
        cpu: usize,
        /// The raw value as written, before sanitization.
        raw: u64,
    },
    /// The attached [`FaultPlan`](crate::FaultPlan) fired an injection
    /// (diagnostic marker; the fault itself is applied separately).
    FaultInjected {
        /// CPU index the injection targeted.
        cpu: usize,
        /// What was injected.
        fault: crate::fault::InjectedFault,
        /// Machine step count at which it fired.
        step: u64,
    },
}

/// A bounded event trace.
#[derive(Debug, Clone)]
pub struct Trace {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    /// Total events observed (including evicted ones).
    pub total: u64,
}

impl Trace {
    /// Creates a trace keeping the most recent `capacity` events,
    /// clamped to `1..=`[`MAX_CAPACITY`]. The same clamped value bounds
    /// both the ring allocation and its retention.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.clamp(1, MAX_CAPACITY);
        Self {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// The retention bound the constructor settled on.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(ev);
        self.total += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Drops all retained events (the total keeps counting).
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Renders an event as one display line.
    pub fn render(ev: &TraceEvent) -> String {
        match ev {
            TraceEvent::Retired { cpu, pc, el, instr } => {
                format!("cpu{cpu} EL{el} {pc:#010x}  {instr:?}")
            }
            TraceEvent::TrapToEl2 {
                cpu,
                kind,
                esr,
                pc,
                phase,
                sysreg,
            } => {
                let cause = match sysreg {
                    Some(id) => format!("{kind:?} {id:?}"),
                    None => format!("{kind:?}"),
                };
                format!(
                    "cpu{cpu} ---- TRAP to EL2: {cause} (esr={esr:#x}, in {}) from {pc:#010x}",
                    phase.label()
                )
            }
            TraceEvent::ExceptionToEl1 { cpu, esr, vector } => {
                format!("cpu{cpu} ---- exception to EL1 (esr={esr:#x}) -> {vector:#010x}")
            }
            TraceEvent::PhaseChange { cpu, phase } => {
                format!("cpu{cpu} .... phase: {}", phase.label())
            }
            TraceEvent::VncrDeferred {
                cpu,
                reg,
                write,
                offset,
            } => {
                let dir = if *write { "write" } else { "read" };
                format!("cpu{cpu} ++++ NEVE deferred {dir} of {reg:?} to page slot {offset:#x}")
            }
            TraceEvent::VncrRawSanitized { cpu, raw } => {
                format!("cpu{cpu} !!!! VNCR_EL2 write {raw:#x} carried reserved bits (RES0)")
            }
            TraceEvent::FaultInjected { cpu, fault, step } => {
                format!(
                    "cpu{cpu} !!!! FAULT injected: {} at step {step}",
                    fault.label()
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent() {
        let mut t = Trace::new(2);
        for pc in 0..5u64 {
            t.push(TraceEvent::Retired {
                cpu: 0,
                pc,
                el: 1,
                instr: Instr::Nop,
            });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.total, 5);
        let pcs: Vec<u64> = t
            .events()
            .map(|e| match e {
                TraceEvent::Retired { pc, .. } => *pc,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pcs, vec![3, 4]);
    }

    #[test]
    fn capacity_is_clamped_once_and_enforced() {
        // Regression: `Trace::new(0)` used to clamp `capacity` but not
        // the allocation, and a huge capacity capped the allocation but
        // not retention (unbounded growth).
        let mut t = Trace::new(0);
        assert_eq!(t.capacity(), 1);
        for pc in 0..3u64 {
            t.push(TraceEvent::Retired {
                cpu: 0,
                pc,
                el: 1,
                instr: Instr::Nop,
            });
        }
        assert_eq!(t.len(), 1, "retention respects the clamp");
        assert_eq!(t.total, 3);

        let t = Trace::new(usize::MAX);
        assert_eq!(t.capacity(), MAX_CAPACITY, "upper clamp bounds retention");
    }

    #[test]
    fn render_mentions_the_essentials() {
        let s = Trace::render(&TraceEvent::TrapToEl2 {
            cpu: 1,
            kind: TrapKind::Hvc,
            esr: 0x5800_0000,
            pc: 0x1000,
            phase: Phase::Guest,
            sysreg: None,
        });
        assert!(s.contains("TRAP"));
        assert!(s.contains("Hvc"));
        assert!(s.contains("cpu1"));
        assert!(s.contains("guest"));
    }

    #[test]
    fn render_shows_sysreg_provenance_and_phase() {
        use neve_sysreg::SysReg;
        let s = Trace::render(&TraceEvent::TrapToEl2 {
            cpu: 0,
            kind: TrapKind::SysReg,
            esr: 0,
            pc: 0x2000,
            phase: Phase::Guest,
            sysreg: Some(RegId::Plain(SysReg::HcrEl2)),
        });
        assert!(s.contains("HcrEl2"), "{s}");
        let s = Trace::render(&TraceEvent::VncrDeferred {
            cpu: 0,
            reg: RegId::Plain(SysReg::VttbrEl2),
            write: true,
            offset: 0x20,
        });
        assert!(s.contains("deferred write"), "{s}");
        assert!(s.contains("VttbrEl2"), "{s}");
        let s = Trace::render(&TraceEvent::PhaseChange {
            cpu: 0,
            phase: Phase::EretEmul,
        });
        assert!(s.contains("eret_emul"), "{s}");
    }
}
