//! Execution tracing.
//!
//! An optional ring buffer of architectural events, cheap enough to
//! leave compiled in: the machine records nothing unless a trace is
//! attached. The `neve-cli trace` command uses this to show the
//! instruction-level anatomy of a nested world switch — the literal
//! sequence Section 5 of the paper describes in prose.

use crate::isa::Instr;
use neve_cycles::TrapKind;
use std::collections::VecDeque;

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An instruction retired.
    Retired {
        /// CPU index.
        cpu: usize,
        /// Address it executed from.
        pc: u64,
        /// Exception level it executed at.
        el: u8,
        /// The instruction.
        instr: Instr,
    },
    /// A trap was taken to EL2 (the host hypervisor ran).
    TrapToEl2 {
        /// CPU index.
        cpu: usize,
        /// Trap classification.
        kind: TrapKind,
        /// Syndrome register value.
        esr: u64,
        /// Faulting/preferred-return address.
        pc: u64,
    },
    /// An exception was delivered to EL1 (vectored entry).
    ExceptionToEl1 {
        /// CPU index.
        cpu: usize,
        /// Syndrome value.
        esr: u64,
        /// Vector target.
        vector: u64,
    },
}

/// A bounded event trace.
#[derive(Debug, Clone)]
pub struct Trace {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    /// Total events observed (including evicted ones).
    pub total: u64,
}

impl Trace {
    /// Creates a trace keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity: capacity.max(1),
            total: 0,
        }
    }

    /// Records one event.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(ev);
        self.total += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Drops all retained events (the total keeps counting).
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Renders an event as one display line.
    pub fn render(ev: &TraceEvent) -> String {
        match ev {
            TraceEvent::Retired { cpu, pc, el, instr } => {
                format!("cpu{cpu} EL{el} {pc:#010x}  {instr:?}")
            }
            TraceEvent::TrapToEl2 { cpu, kind, esr, pc } => {
                format!("cpu{cpu} ---- TRAP to EL2: {kind:?} (esr={esr:#x}) from {pc:#010x}")
            }
            TraceEvent::ExceptionToEl1 { cpu, esr, vector } => {
                format!("cpu{cpu} ---- exception to EL1 (esr={esr:#x}) -> {vector:#010x}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent() {
        let mut t = Trace::new(2);
        for pc in 0..5u64 {
            t.push(TraceEvent::Retired {
                cpu: 0,
                pc,
                el: 1,
                instr: Instr::Nop,
            });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.total, 5);
        let pcs: Vec<u64> = t
            .events()
            .map(|e| match e {
                TraceEvent::Retired { pc, .. } => *pc,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pcs, vec![3, 4]);
    }

    #[test]
    fn render_mentions_the_essentials() {
        let s = Trace::render(&TraceEvent::TrapToEl2 {
            cpu: 1,
            kind: TrapKind::Hvc,
            esr: 0x5800_0000,
            pc: 0x1000,
        });
        assert!(s.contains("TRAP"));
        assert!(s.contains("Hvc"));
        assert!(s.contains("cpu1"));
    }
}
