//! Seeded guest-hypervisor program synthesis for the fuzzing campaign.
//!
//! Programs are generated from an explicit seed through splitmix64 —
//! the same (and only) randomness discipline as [`crate::fault`] — so a
//! case is fully described by `(seed, length)` and a mutated case by its
//! final instruction list. There is no wall-clock entropy anywhere: the
//! campaign replays bit-identically.
//!
//! The synthesis is weighted toward *guest-hypervisor shapes*: EL2
//! system-register reads and writes (including every VNCR-deferrable
//! register), VHE alias names, TLB invalidations, SGI generation (IPIs),
//! and store+invalidate sequences that look like Stage-2 map/unmap, all
//! mixed with plain ALU traffic and in-program control flow. Everything
//! emitted is assemblable and in-bounds: branch targets land inside the
//! program (or exactly one slot past the end, a fetch failure both
//! engines must report identically).

use crate::host::{PROGRAM_BASE, SCRATCH_BASE};
use crate::isa::{Instr, Special};
use neve_sysreg::{RegId, SysReg};

/// splitmix64: the campaign's only randomness source, seeded explicitly.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The register names generated accesses draw from: a cross-section of
/// every NEVE class (deferred, redirected, trap-on-write, timer-trap)
/// plus plain EL1 state and the SGI generation register.
fn sysreg_pool() -> &'static [RegId] {
    use SysReg::*;
    const POOL: &[RegId] = &[
        // VM system registers: VNCR-deferred under NEVE.
        RegId::Plain(HcrEl2),
        RegId::Plain(VttbrEl2),
        RegId::Plain(VmpidrEl2),
        RegId::Plain(VpidrEl2),
        RegId::Plain(TpidrEl2),
        // Hypervisor control registers: redirected to EL1 counterparts.
        RegId::Plain(VbarEl2),
        RegId::Plain(EsrEl2),
        RegId::Plain(ElrEl2),
        RegId::Plain(FarEl2),
        RegId::Plain(SpsrEl2),
        // Redirect-or-trap (VHE-dependent treatment).
        RegId::Plain(TcrEl2),
        RegId::Plain(Ttbr0El2),
        // Cached-copy (trap-on-write) registers.
        RegId::Plain(CnthctlEl2),
        RegId::Plain(CntvoffEl2),
        RegId::Plain(CptrEl2),
        RegId::Plain(MdcrEl2),
        // Timer EL2 registers: always trap.
        RegId::Plain(CnthpCtlEl2),
        RegId::Plain(CnthpCvalEl2),
        // VHE alias names (defer under NEVE, trap under v8.3-NV).
        RegId::El12(SctlrEl1),
        RegId::El12(Ttbr0El1),
        RegId::El12(TcrEl1),
        RegId::El12(VbarEl1),
        // Plain EL1 state (passthrough or NV1-trapped).
        RegId::Plain(SctlrEl1),
        RegId::Plain(Ttbr0El1),
        RegId::Plain(MairEl1),
        RegId::Plain(TpidrEl1),
        // SGI generation: virtual IPIs.
        RegId::Plain(IccSgi1rEl1),
    ];
    POOL
}

/// Emits one seeded instruction. `len` is the program's instruction
/// count (branch targets stay inside `[0, len]` slots).
fn gen_instr(s: &mut u64, len: usize) -> Instr {
    let reg = |s: &mut u64| (splitmix64(s) % 31) as u8;
    let target = |s: &mut u64| PROGRAM_BASE + 4 * (splitmix64(s) % (len as u64 + 1));
    let sysreg = |s: &mut u64| {
        let pool = sysreg_pool();
        pool[(splitmix64(s) % pool.len() as u64) as usize]
    };
    match splitmix64(s) % 24 {
        // ALU traffic.
        0 => Instr::MovImm(reg(s), splitmix64(s) % 0x1_0000),
        1 => Instr::Mov(reg(s), reg(s)),
        2 => Instr::Add(reg(s), reg(s), reg(s)),
        3 => Instr::AddImm(reg(s), reg(s), splitmix64(s) % 0x1000),
        4 => Instr::SubImm(reg(s), reg(s), splitmix64(s) % 0x1000),
        5 => Instr::Orr(reg(s), reg(s), reg(s)),
        6 => Instr::LslImm(reg(s), reg(s), (splitmix64(s) % 64) as u8),
        // Control flow (in-program).
        7 => Instr::B(target(s)),
        8 => Instr::Cbz(reg(s), target(s)),
        9 => Instr::Cbnz(reg(s), target(s)),
        // EL2 system-register traffic: the heart of the campaign.
        10..=12 => Instr::Msr(sysreg(s), reg(s)),
        13..=15 => Instr::Mrs(reg(s), sysreg(s)),
        // Scratch-region loads/stores (S2-translated data traffic).
        16 => {
            let r = reg(s);
            Instr::MovImm(r, SCRATCH_BASE + ((splitmix64(s) % 0x4000) & !7))
        }
        17 => Instr::Str(reg(s), reg(s), (splitmix64(s) % 64) as i64 * 8),
        18 => Instr::Ldr(reg(s), reg(s), (splitmix64(s) % 64) as i64 * 8),
        // TLB maintenance (the "unmap" half of map/unmap sequences).
        19 => Instr::TlbiVmall,
        // Hypervisor calls and returns.
        20 => Instr::Hvc((splitmix64(s) % 0x100) as u16),
        21 => Instr::Eret,
        // Environment queries and barriers.
        22 => Instr::MrsSpecial(reg(s), Special::CurrentEl),
        _ => {
            if splitmix64(s).is_multiple_of(2) {
                Instr::Isb
            } else {
                Instr::Work(1 + splitmix64(s) % 20)
            }
        }
    }
}

/// Generates a `len`-instruction guest-hypervisor program body from
/// `seed` (the trailing `Halt` is the harness's to add). Deterministic:
/// same inputs, same program, bit for bit.
pub fn generate(seed: u64, len: usize) -> Vec<Instr> {
    let mut s = seed;
    (0..len).map(|_| gen_instr(&mut s, len)).collect()
}

/// Mutates `parent` under `seed`: 1-4 seeded edits, each replacing,
/// inserting, or deleting one instruction (the program never shrinks
/// below one instruction). Deterministic like [`generate`].
pub fn mutate(parent: &[Instr], seed: u64) -> Vec<Instr> {
    let mut s = seed;
    let mut code: Vec<Instr> = parent.to_vec();
    if code.is_empty() {
        return generate(seed, 8);
    }
    let edits = 1 + splitmix64(&mut s) % 4;
    for _ in 0..edits {
        let pos = (splitmix64(&mut s) % code.len() as u64) as usize;
        match splitmix64(&mut s) % 3 {
            0 => code[pos] = gen_instr(&mut s, code.len()),
            1 => {
                let i = gen_instr(&mut s, code.len() + 1);
                code.insert(pos, i);
            }
            _ => {
                if code.len() > 1 {
                    code.remove(pos);
                }
            }
        }
    }
    code
}

// ----------------------------------------------------------------------
// Reproducer serialization: one instruction per line-less token string,
// so a failing case can be persisted as JSON and replayed exactly.
// ----------------------------------------------------------------------

fn regid_name(id: RegId) -> String {
    id.to_string()
}

fn regid_parse(name: &str) -> Option<RegId> {
    for r in SysReg::all_cached() {
        for id in [RegId::Plain(*r), RegId::El12(*r), RegId::El02(*r)] {
            if id.to_string() == name {
                return Some(id);
            }
        }
    }
    None
}

/// Renders one instruction as a stable, human-readable token string
/// (`"Msr HCR_EL2 5"`, `"B 1048592"`, ...). [`instr_from_string`]
/// inverts it exactly.
pub fn instr_to_string(i: Instr) -> String {
    match i {
        Instr::MovImm(r, v) => format!("MovImm {r} {v}"),
        Instr::Mov(a, b) => format!("Mov {a} {b}"),
        Instr::Add(a, b, c) => format!("Add {a} {b} {c}"),
        Instr::AddImm(a, b, v) => format!("AddImm {a} {b} {v}"),
        Instr::Sub(a, b, c) => format!("Sub {a} {b} {c}"),
        Instr::SubImm(a, b, v) => format!("SubImm {a} {b} {v}"),
        Instr::And(a, b, c) => format!("And {a} {b} {c}"),
        Instr::Orr(a, b, c) => format!("Orr {a} {b} {c}"),
        Instr::OrrImm(a, b, v) => format!("OrrImm {a} {b} {v}"),
        Instr::LslImm(a, b, v) => format!("LslImm {a} {b} {v}"),
        Instr::LsrImm(a, b, v) => format!("LsrImm {a} {b} {v}"),
        Instr::Ldr(a, b, o) => format!("Ldr {a} {b} {o}"),
        Instr::Str(a, b, o) => format!("Str {a} {b} {o}"),
        Instr::Mrs(r, id) => format!("Mrs {r} {}", regid_name(id)),
        Instr::Msr(id, r) => format!("Msr {} {r}", regid_name(id)),
        Instr::MrsSpecial(r, sp) => {
            let name = match sp {
                Special::CurrentEl => "CurrentEl",
                Special::CntVct => "CntVct",
                Special::CntPct => "CntPct",
            };
            format!("MrsSpecial {r} {name}")
        }
        Instr::Hvc(v) => format!("Hvc {v}"),
        Instr::Svc(v) => format!("Svc {v}"),
        Instr::Smc(v) => format!("Smc {v}"),
        Instr::Eret => "Eret".into(),
        Instr::Isb => "Isb".into(),
        Instr::Dsb => "Dsb".into(),
        Instr::TlbiVmall => "TlbiVmall".into(),
        Instr::Wfi => "Wfi".into(),
        Instr::Nop => "Nop".into(),
        Instr::B(a) => format!("B {a}"),
        Instr::Bl(a) => format!("Bl {a}"),
        Instr::Ret => "Ret".into(),
        Instr::Cbz(r, a) => format!("Cbz {r} {a}"),
        Instr::Cbnz(r, a) => format!("Cbnz {r} {a}"),
        Instr::Work(n) => format!("Work {n}"),
        Instr::Halt(c) => format!("Halt {c}"),
    }
}

/// Parses the [`instr_to_string`] rendering back into an instruction.
pub fn instr_from_string(s: &str) -> Option<Instr> {
    let mut t = s.split_whitespace();
    let op = t.next()?;
    let mut u8s = || -> Option<u8> { t.next()?.parse().ok() };
    macro_rules! n {
        () => {
            t.next()?.parse().ok()?
        };
    }
    Some(match op {
        "MovImm" => Instr::MovImm(u8s()?, n!()),
        "Mov" => Instr::Mov(u8s()?, u8s()?),
        "Add" => Instr::Add(u8s()?, u8s()?, u8s()?),
        "AddImm" => Instr::AddImm(u8s()?, u8s()?, n!()),
        "Sub" => Instr::Sub(u8s()?, u8s()?, u8s()?),
        "SubImm" => Instr::SubImm(u8s()?, u8s()?, n!()),
        "And" => Instr::And(u8s()?, u8s()?, u8s()?),
        "Orr" => Instr::Orr(u8s()?, u8s()?, u8s()?),
        "OrrImm" => Instr::OrrImm(u8s()?, u8s()?, n!()),
        "LslImm" => Instr::LslImm(u8s()?, u8s()?, u8s()?),
        "LsrImm" => Instr::LsrImm(u8s()?, u8s()?, u8s()?),
        "Ldr" => Instr::Ldr(u8s()?, u8s()?, n!()),
        "Str" => Instr::Str(u8s()?, u8s()?, n!()),
        "Mrs" => {
            let r = u8s()?;
            Instr::Mrs(r, regid_parse(t.next()?)?)
        }
        "Msr" => {
            let id = regid_parse(t.next()?)?;
            Instr::Msr(id, t.next()?.parse().ok()?)
        }
        "MrsSpecial" => {
            let r = u8s()?;
            let sp = match t.next()? {
                "CurrentEl" => Special::CurrentEl,
                "CntVct" => Special::CntVct,
                "CntPct" => Special::CntPct,
                _ => return None,
            };
            Instr::MrsSpecial(r, sp)
        }
        "Hvc" => Instr::Hvc(n!()),
        "Svc" => Instr::Svc(n!()),
        "Smc" => Instr::Smc(n!()),
        "Eret" => Instr::Eret,
        "Isb" => Instr::Isb,
        "Dsb" => Instr::Dsb,
        "TlbiVmall" => Instr::TlbiVmall,
        "Wfi" => Instr::Wfi,
        "Nop" => Instr::Nop,
        "B" => Instr::B(n!()),
        "Bl" => Instr::Bl(n!()),
        "Ret" => Instr::Ret,
        "Cbz" => Instr::Cbz(u8s()?, n!()),
        "Cbnz" => Instr::Cbnz(u8s()?, n!()),
        "Work" => Instr::Work(n!()),
        "Halt" => Instr::Halt(n!()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(42, 40), generate(42, 40));
        assert_ne!(generate(42, 40), generate(43, 40));
    }

    #[test]
    fn mutation_is_deterministic_and_bounded() {
        let parent = generate(7, 30);
        let a = mutate(&parent, 99);
        assert_eq!(a, mutate(&parent, 99));
        assert_ne!(a, parent);
        assert!(!a.is_empty());
        assert!(a.len() <= parent.len() + 4);
    }

    #[test]
    fn generated_branches_stay_in_bounds() {
        for seed in 0..32u64 {
            let len = 25;
            for i in generate(seed, len) {
                if let Instr::B(t) | Instr::Bl(t) | Instr::Cbz(_, t) | Instr::Cbnz(_, t) = i {
                    assert!(t >= PROGRAM_BASE);
                    assert!(t <= PROGRAM_BASE + 4 * len as u64);
                }
            }
        }
    }

    #[test]
    fn every_generated_instr_round_trips_through_strings() {
        for seed in 0..64u64 {
            for i in generate(seed, 20) {
                let s = instr_to_string(i);
                assert_eq!(instr_from_string(&s), Some(i), "{s}");
            }
        }
        // Plus the shapes the generator doesn't emit.
        for i in [
            Instr::Ret,
            Instr::Wfi,
            Instr::Dsb,
            Instr::Halt(3),
            Instr::Svc(9),
            Instr::Smc(2),
            Instr::Bl(PROGRAM_BASE),
            Instr::Sub(1, 2, 3),
            Instr::And(1, 2, 3),
            Instr::OrrImm(1, 2, 3),
            Instr::LsrImm(1, 2, 3),
            Instr::Mov(4, 5),
            Instr::MrsSpecial(1, Special::CntVct),
            Instr::MrsSpecial(1, Special::CntPct),
            Instr::Mrs(1, RegId::El02(SysReg::CntvCtlEl0)),
        ] {
            let s = instr_to_string(i);
            assert_eq!(instr_from_string(&s), Some(i), "{s}");
        }
    }

    #[test]
    fn pool_names_all_parse_back() {
        for id in sysreg_pool() {
            assert_eq!(regid_parse(&regid_name(*id)), Some(*id));
        }
    }
}
