//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded, replayable schedule of architectural
//! faults applied at chosen machine step counts: corrupt a Stage-2
//! page-table entry the hardware is walking, drop or double a VNCR
//! deferred-page write, deliver a spurious trap, or reset the cycle
//! counter. There is no wall-clock randomness anywhere — the schedule
//! is fixed at construction from an explicit seed, so a campaign
//! replays bit-identically and a failure report names the exact step
//! at which each fault fired.
//!
//! With no plan attached the machine's step path does nothing beyond
//! incrementing its step counter: the injection machinery being *off*
//! perturbs no measurement (the determinism suite holds this line).
//!
//! Architecturally, each fault models a real failure class in a nested
//! virtualization stack (see DESIGN.md §"Fault model"): a corrupted
//! shadow PTE is a shadow-paging coherence bug, a lost VNCR write is a
//! missing cached-copy synchronization (paper §6), a spurious trap is a
//! phantom interrupt mid world switch, and a counter reset is a
//! wrapping/reset cycle-counter source.

/// One injectable architectural fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InjectedFault {
    /// Overwrite one descriptor in the Stage-2 table the hardware
    /// VTTBR currently points at (the shadow table while a nested
    /// guest runs) with a garbage value chosen by the parameter, then
    /// invalidate the TLB for that VMID so the corruption is observed.
    CorruptShadowPte,
    /// Silently discard the next VNCR deferred-page write (the store
    /// is charged but the slot keeps its stale value).
    DropVncrWrite,
    /// Apply the next VNCR deferred-page write twice, charging both
    /// stores (a duplicated synchronization).
    DoubleVncrWrite,
    /// Take a spurious IRQ trap to EL2 with nothing pending.
    SpuriousTrap,
    /// Zero the cycle counter mid-run (a wrap/reset of the cycle
    /// source under a measurement interval).
    ResetCycleCounter,
}

impl InjectedFault {
    /// Every fault kind, in a stable order.
    pub fn all() -> [InjectedFault; 5] {
        [
            InjectedFault::CorruptShadowPte,
            InjectedFault::DropVncrWrite,
            InjectedFault::DoubleVncrWrite,
            InjectedFault::SpuriousTrap,
            InjectedFault::ResetCycleCounter,
        ]
    }

    /// Stable machine-readable label (reports, trace rendering).
    pub fn label(self) -> &'static str {
        match self {
            InjectedFault::CorruptShadowPte => "corrupt-shadow-pte",
            InjectedFault::DropVncrWrite => "drop-vncr-write",
            InjectedFault::DoubleVncrWrite => "double-vncr-write",
            InjectedFault::SpuriousTrap => "spurious-trap",
            InjectedFault::ResetCycleCounter => "reset-cycle-counter",
        }
    }
}

/// A single scheduled injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Machine step count (across all CPUs) at which to fire.
    pub step: u64,
    /// What to inject.
    pub fault: InjectedFault,
    /// Fault-specific parameter (e.g. which PTE slot, what garbage).
    pub param: u64,
}

/// Pending tamper on the next VNCR deferred-page write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VncrTamper {
    /// Discard the write.
    Drop,
    /// Perform (and charge) it twice.
    Double,
}

/// A deterministic, replayable injection schedule.
///
/// Cloning a plan before attaching it lets a campaign reuse one
/// schedule across many cells; the clone carries no consumed state.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    injections: Vec<Injection>,
    next: usize,
    armed_vncr: Option<VncrTamper>,
    applied: u64,
}

/// splitmix64: the only randomness source, seeded explicitly.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Built-in plan names accepted by [`FaultPlan::builtin`], in campaign
/// order.
pub const BUILTIN_PLANS: [&str; 6] = [
    "pte-corruption",
    "vncr-drop",
    "vncr-double",
    "spurious-trap",
    "counter-reset",
    "chaos",
];

impl FaultPlan {
    /// A plan firing exactly the given injections (sorted by step; ties
    /// fire in the given order).
    pub fn new(mut injections: Vec<Injection>) -> Self {
        injections.sort_by_key(|i| i.step);
        Self {
            injections,
            next: 0,
            armed_vncr: None,
            applied: 0,
        }
    }

    /// A seeded random plan: `count` injections of arbitrary kinds at
    /// steps in `[16, max_step)`. Same seed, same plan, bit-identical
    /// replay.
    pub fn seeded(seed: u64, count: usize, max_step: u64) -> Self {
        let mut s = seed;
        let span = max_step.max(17) - 16;
        let kinds = InjectedFault::all();
        let injections = (0..count)
            .map(|_| Injection {
                step: 16 + splitmix64(&mut s) % span,
                fault: kinds[(splitmix64(&mut s) % kinds.len() as u64) as usize],
                param: splitmix64(&mut s),
            })
            .collect();
        Self::new(injections)
    }

    /// A named built-in plan, parameterized by `seed` so a campaign's
    /// `--seed` reshuffles every schedule deterministically.
    pub fn builtin(name: &str, seed: u64) -> Option<Self> {
        // Fold the name into the seed so distinct plans never share a
        // step schedule even for the same campaign seed.
        let mut s = seed
            ^ name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
            });
        let mut sched = |count: usize, fault: InjectedFault, lo: u64, hi: u64| -> Vec<Injection> {
            (0..count)
                .map(|_| Injection {
                    step: lo + splitmix64(&mut s) % (hi - lo),
                    fault,
                    param: splitmix64(&mut s),
                })
                .collect()
        };
        let injections = match name {
            "pte-corruption" => sched(3, InjectedFault::CorruptShadowPte, 64, 8192),
            "vncr-drop" => sched(2, InjectedFault::DropVncrWrite, 32, 4096),
            "vncr-double" => sched(2, InjectedFault::DoubleVncrWrite, 32, 4096),
            "spurious-trap" => sched(3, InjectedFault::SpuriousTrap, 32, 8192),
            "counter-reset" => sched(1, InjectedFault::ResetCycleCounter, 256, 4096),
            "chaos" => {
                let mut v = Vec::new();
                for fault in InjectedFault::all() {
                    v.extend(sched(2, fault, 16, 16384));
                }
                v
            }
            _ => return None,
        };
        Some(Self::new(injections))
    }

    /// The full schedule, sorted by step.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// How many injections have fired so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Pops the next injection due at or before `step`, if any.
    pub(crate) fn take_due(&mut self, step: u64) -> Option<Injection> {
        let inj = *self.injections.get(self.next)?;
        if inj.step > step {
            return None;
        }
        self.next += 1;
        self.applied += 1;
        Some(inj)
    }

    /// Arms a tamper on the next VNCR deferred write.
    pub(crate) fn arm_vncr(&mut self, t: VncrTamper) {
        self.armed_vncr = Some(t);
    }

    /// Consumes the armed VNCR tamper, if any.
    pub(crate) fn take_armed_vncr(&mut self) -> Option<VncrTamper> {
        self.armed_vncr.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_replay_bit_identically() {
        let a = FaultPlan::seeded(42, 8, 10_000);
        let b = FaultPlan::seeded(42, 8, 10_000);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 8, 10_000);
        assert_ne!(a.injections(), c.injections());
    }

    #[test]
    fn injections_are_sorted_and_consumed_in_order() {
        let mut p = FaultPlan::new(vec![
            Injection {
                step: 30,
                fault: InjectedFault::SpuriousTrap,
                param: 0,
            },
            Injection {
                step: 10,
                fault: InjectedFault::DropVncrWrite,
                param: 0,
            },
        ]);
        assert!(p.take_due(5).is_none());
        assert_eq!(p.take_due(10).unwrap().fault, InjectedFault::DropVncrWrite);
        assert!(p.take_due(29).is_none());
        assert_eq!(p.take_due(100).unwrap().fault, InjectedFault::SpuriousTrap);
        assert!(p.take_due(u64::MAX).is_none());
        assert_eq!(p.applied(), 2);
    }

    #[test]
    fn every_builtin_resolves_and_unknown_names_do_not() {
        for name in BUILTIN_PLANS {
            let p = FaultPlan::builtin(name, 7).expect(name);
            assert!(!p.injections().is_empty(), "{name} schedules nothing");
            assert_eq!(
                Some(&p),
                FaultPlan::builtin(name, 7).as_ref(),
                "{name} not deterministic"
            );
            assert_ne!(
                FaultPlan::builtin(name, 8),
                Some(p),
                "{name} ignores the seed"
            );
        }
        assert!(FaultPlan::builtin("meteor-strike", 7).is_none());
    }

    #[test]
    fn vncr_tamper_is_one_shot() {
        let mut p = FaultPlan::new(Vec::new());
        assert!(p.take_armed_vncr().is_none());
        p.arm_vncr(VncrTamper::Double);
        assert_eq!(p.take_armed_vncr(), Some(VncrTamper::Double));
        assert!(p.take_armed_vncr().is_none());
    }
}
