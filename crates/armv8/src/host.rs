//! Shared trap-servicing hosts and machine harnesses.
//!
//! The proptest suites, the differential oracles and the fuzzing
//! campaign all need a host hypervisor that services arbitrary guest
//! traps without rejecting anything. Historically each test file carried
//! its own copy; this module is the one shared implementation.
//!
//! Two hosts are provided:
//!
//! - [`SkipHyp`]: the most permissive host — every trap is serviced by
//!   skipping the trapping instruction. Good for "nothing a guest does
//!   may crash the simulator" properties.
//! - [`EmulHyp`]: a KVM-shaped host that *emulates* trapped accesses the
//!   way NEVE hardware would have handled them (deferred accesses hit
//!   the same access-page memory, redirected accesses hit the EL1
//!   counterpart, everything else lands in an in-memory virtual-EL2
//!   context). Because the emulation follows
//!   [`NeveEngine::architectural_disposition`], the *guest-visible*
//!   semantics of a program are identical whether it runs on ARMv8.3
//!   (every access traps into `EmulHyp`) or on NEVE hardware (most
//!   accesses are rewritten without trapping) — which is exactly what
//!   makes cross-configuration lockstep a sound fuzzing oracle.

use crate::isa::{Asm, Instr, Program};
use crate::machine::{ExitInfo, Hypervisor, Machine, MachineConfig};
use crate::pstate::Pstate;
use crate::ArchLevel;
use neve_core::{Disposition, NeveEngine};
use neve_memsim::{FrameAlloc, PageTable, Perms};
use neve_sysreg::bits::{esr, hcr, vttbr};
use neve_sysreg::{RegId, SysReg};
use std::collections::HashMap;

/// Virtual address of the catch-all EL1 vector stub every harness loads.
pub const VECTOR_BASE: u64 = 0x0F00_0000;

/// Virtual address harness programs are loaded at.
pub const PROGRAM_BASE: u64 = 0x10_0000;

/// Physical address of the NEVE deferred-access page the harnesses use.
pub const VNCR_PAGE: u64 = 0x0E00_0000;

/// Base of the frame pool Stage-2 tables are allocated from.
pub const STAGE2_POOL: u64 = 0x0C00_0000;

/// Guest-visible scratch region (identity-mapped under Stage 2) that
/// generated load/store traffic targets.
pub const SCRATCH_BASE: u64 = 0x20_0000;

/// A hypervisor that services every trap by skipping the instruction —
/// the most adversarial-friendly host (never rejects anything).
#[derive(Debug, Default)]
pub struct SkipHyp;

impl Hypervisor for SkipHyp {
    fn handle_sync(&mut self, m: &mut Machine, cpu: usize, info: ExitInfo) {
        if esr::ec(info.esr) != esr::EC_HVC64 {
            m.core_mut(cpu)
                .regs
                .write(SysReg::ElrEl2, info.elr.wrapping_add(4));
        }
    }
    fn handle_irq(&mut self, _m: &mut Machine, _cpu: usize) {}
}

/// A KVM-shaped emulating host: trapped system-register accesses are
/// emulated per the NEVE architectural disposition, trapped MMIO loads
/// complete with a fixed pattern, and interrupts are acknowledged and
/// completed. See the module docs for why this makes ARMv8.3 and NEVE
/// runs of the same program guest-visibly identical.
#[derive(Debug, Default)]
pub struct EmulHyp {
    /// The in-memory virtual-EL2 register context (the moral equivalent
    /// of KVM's in-memory vcpu sysreg array): every access whose NEVE
    /// disposition is `Trap`/`Passthrough` lands here on read and write.
    vregs: HashMap<RegId, u64>,
    /// Synchronous traps serviced.
    pub sync_traps: u64,
    /// IRQ traps serviced.
    pub irq_traps: u64,
}

/// The value trapped MMIO loads complete with (any fixed pattern works;
/// it only has to be the *same* pattern on every machine under compare).
const MMIO_READ_PATTERN: u64 = 0x5151_5151_5151_5151;

impl EmulHyp {
    /// A fresh host with an empty virtual-EL2 context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the virtual-EL2 context (unwritten registers read as 0).
    pub fn vreg(&self, id: RegId) -> u64 {
        self.vregs.get(&id).copied().unwrap_or(0)
    }

    /// Emulates one trapped system-register access the way NEVE hardware
    /// would have *handled* it (deferred to the access page, redirected
    /// to the EL1 counterpart, or kept in the virtual-EL2 context).
    fn emulate_sysreg(&mut self, m: &mut Machine, cpu: usize, iss: u64) {
        let Some((id, write, rt)) = neve_sysreg::regcode::parse_sysreg_iss(iss) else {
            return;
        };
        // The guest hypervisor's (virtual) VHE-ness selects the
        // TCR_EL2/TTBR0_EL2 treatment, exactly as the in-machine NEVE
        // engine decides it (NV1 clear = the host runs a VHE guest).
        let vhe_guest = id.is_vhe_alias() || m.core(cpu).regs.read(SysReg::HcrEl2) & hcr::NV1 == 0;
        match NeveEngine::architectural_disposition(id, write, vhe_guest) {
            Disposition::Memory { offset } => {
                // Same slot NEVE hardware would have used, so a
                // write-then-read round-trips identically on both
                // architectures — and so does final memory.
                let addr = VNCR_PAGE + u64::from(offset);
                if write {
                    let v = m.core(cpu).gpr(rt);
                    m.hyp_mem_write(addr, v);
                } else {
                    let v = m.hyp_mem_read(addr);
                    m.core_mut(cpu).set_gpr(rt, v);
                }
            }
            Disposition::RedirectEl1(t) => {
                if write {
                    let v = m.core(cpu).gpr(rt);
                    m.hyp_write(cpu, t, v);
                } else {
                    let v = m.hyp_read(cpu, t);
                    m.core_mut(cpu).set_gpr(rt, v);
                }
            }
            Disposition::Trap | Disposition::Passthrough => {
                // Virtual-EL2 context — except SGI generation, which is
                // a real side effect (virtual IPIs) the host performs.
                if id.base_reg() == SysReg::IccSgi1rEl1 && write {
                    let v = m.core(cpu).gpr(rt);
                    let intid = (v >> 24) & 0xf;
                    let targets = (v & 0xffff) as u16;
                    m.gic.dist.send_sgi(cpu, targets, intid as u32);
                } else if write {
                    let v = m.core(cpu).gpr(rt);
                    self.vregs.insert(id, v);
                } else {
                    let v = self.vreg(id);
                    m.core_mut(cpu).set_gpr(rt, v);
                }
            }
        }
    }
}

impl Hypervisor for EmulHyp {
    fn handle_sync(&mut self, m: &mut Machine, cpu: usize, info: ExitInfo) {
        self.sync_traps += 1;
        match esr::ec(info.esr) {
            esr::EC_SYSREG => {
                let iss = esr::iss(info.esr);
                if iss == 1 {
                    // The TLB-maintenance marker: perform the flush the
                    // guest hypervisor asked for.
                    let vmid = vttbr::vmid(m.core(cpu).regs.read(SysReg::VttbrEl2));
                    m.hyp_tlbi_vmid(vmid);
                } else {
                    self.emulate_sysreg(m, cpu, iss);
                }
                m.core_mut(cpu)
                    .regs
                    .write(SysReg::ElrEl2, info.elr.wrapping_add(4));
            }
            esr::EC_DABT_LOW => {
                // Stage-2 abort (the MMIO emulation path): complete
                // loads with the fixed pattern, discard stores, skip.
                if let Some(req) = m.take_mmio(cpu) {
                    if !req.write {
                        m.complete_mmio_read(cpu, req, MMIO_READ_PATTERN);
                    }
                }
                m.core_mut(cpu)
                    .regs
                    .write(SysReg::ElrEl2, info.elr.wrapping_add(4));
            }
            esr::EC_HVC64 => {
                // Preferred return is already the next instruction.
            }
            _ => {
                // eret-from-virtual-EL2, wfx, smc, svc-with-TGE...: skip.
                m.core_mut(cpu)
                    .regs
                    .write(SysReg::ElrEl2, info.elr.wrapping_add(4));
            }
        }
    }

    fn handle_irq(&mut self, m: &mut Machine, cpu: usize) {
        self.irq_traps += 1;
        // Acknowledge and complete every deliverable interrupt so a
        // burst of generated IPIs drains instead of storming.
        for _ in 0..64 {
            match m.gic.dist.ack(cpu) {
                Some(id) => m.gic.dist.eoi(cpu, id),
                None => break,
            }
        }
    }
}

/// Builds the standard single-core harness machine: `program` loaded at
/// its own base, a catch-all EL1 vector stub at [`VECTOR_BASE`], the
/// core parked at [`PROGRAM_BASE`] in `el` with `hcr_bits` installed.
pub fn harness_machine(program: Program, arch: ArchLevel, hcr_bits: u64, el: u8) -> Machine {
    let mut m = Machine::new(MachineConfig {
        arch,
        ncpus: 1,
        mem_size: 1 << 28,
        cost: Default::default(),
    });
    // A catch-all vector so EL1 exceptions land somewhere executable.
    let mut v = Asm::new(VECTOR_BASE);
    for _ in 0..0x200 {
        v.i(Instr::Nop);
    }
    v.i(Instr::Halt(0xe));
    m.load(v.assemble());
    m.load(program);
    m.core_mut(0).pstate = Pstate {
        el,
        irq_masked: true,
        fiq_masked: true,
    };
    m.core_mut(0).pc = PROGRAM_BASE;
    m.core_mut(0).regs.write(SysReg::VbarEl1, VECTOR_BASE);
    m.core_mut(0).regs.write(SysReg::HcrEl2, hcr_bits);
    m
}

/// Installs an identity-mapped Stage-2 regime for `cpu`: tables built
/// from the [`STAGE2_POOL`] frame pool, 2 MiB block mappings over all of
/// RAM *except* the table pool and the deferred-access page (a guest
/// store must never be able to corrupt host-owned structures — reaching
/// them Stage-2 aborts instead), and `VTTBR_EL2` pointing at the root
/// with `vmid`. Returns the root physical address.
pub fn install_stage2(m: &mut Machine, cpu: usize, vmid: u16) -> u64 {
    const BLOCK: u64 = 2 << 20;
    let mut frames = FrameAlloc::new(STAGE2_POOL, 64 * 4096);
    let root = frames.alloc().expect("stage-2 frame pool exhausted");
    m.mem.zero_page(root);
    let table = PageTable { root };
    let limit = m.mem.limit().min(1 << 30);
    let mut ipa = 0;
    while ipa < limit {
        let host_owned = (STAGE2_POOL..STAGE2_POOL + BLOCK).contains(&ipa)
            || (VNCR_PAGE..VNCR_PAGE + BLOCK).contains(&ipa);
        if !host_owned {
            table.map_block(&mut m.mem, &mut frames, ipa, ipa, Perms::RWX);
        }
        ipa += BLOCK;
    }
    m.core_mut(cpu)
        .regs
        .write(SysReg::VttbrEl2, vttbr::build(vmid, root));
    root
}

/// Virtual address the guest hypervisor's boot image is loaded at.
pub const BOOT_BASE: u64 = 0x8_0000;

/// Boots the guest hypervisor on `cpu`: runs a canonical init sequence
/// (configure the virtual-EL2 view — thread pointer, vector base, timer
/// control —, warm the Stage-2 scratch mappings, invalidate stale
/// translations, settle) under an emulating host, then parks the core
/// at [`PROGRAM_BASE`] ready to execute the loaded program.
///
/// Fuzzing campaigns snapshot *after* this call: restoring a snapshot
/// replaces machine construction, Stage-2 installation *and* this boot,
/// which is exactly why a restore-per-case loop beats rebuilding.
///
/// # Panics
///
/// Panics if the boot image does not run to its halt (which would mean
/// the harness is misconfigured, not that a guest found a bug).
pub fn boot_harness(m: &mut Machine, cpu: usize) {
    let mut b = Asm::new(BOOT_BASE);
    // The virtual-EL2 view a guest hypervisor's init path sets up.
    b.i(Instr::MovImm(0, 0x1000));
    b.i(Instr::Msr(RegId::Plain(SysReg::TpidrEl2), 0));
    b.i(Instr::MovImm(0, VECTOR_BASE));
    b.i(Instr::Msr(RegId::Plain(SysReg::VbarEl2), 0));
    b.i(Instr::MovImm(0, 3));
    b.i(Instr::Msr(RegId::Plain(SysReg::CnthctlEl2), 0));
    // Warm the scratch region (faults in the Stage-2 walks now, not
    // during the first fuzz case).
    b.i(Instr::MovImm(1, SCRATCH_BASE));
    for k in 0..8 {
        b.i(Instr::MovImm(2, k));
        b.i(Instr::Str(2, 1, (k * 8) as i64));
    }
    // Drop translations staled by init, then settle (the boot-time
    // busy work — page-table writes, device probing — every real init
    // path performs before entering its main loop).
    b.i(Instr::TlbiVmall);
    for _ in 0..480 {
        b.i(Instr::Work(3));
    }
    b.i(Instr::Halt(0));
    m.load(b.assemble());

    let entry_pc = m.core(cpu).pc;
    m.core_mut(cpu).pc = BOOT_BASE;
    let mut h = EmulHyp::new();
    let out = m.run(&mut h, cpu, 4_096);
    assert_eq!(
        out,
        crate::machine::StepOutcome::Halted(0),
        "boot image did not run to completion: {out:?}"
    );
    m.core_mut(cpu).halted = None;
    m.core_mut(cpu).pc = entry_pc;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::StepOutcome;
    use neve_sysreg::bits::hcr;

    fn nv_hcr(neve: bool) -> u64 {
        hcr::VM | hcr::IMO | hcr::NV | hcr::NV1 | if neve { hcr::NV2 } else { 0 }
    }

    fn program(instrs: &[Instr]) -> Program {
        let mut a = Asm::new(PROGRAM_BASE);
        for &i in instrs {
            a.i(i);
        }
        a.i(Instr::Halt(1));
        a.assemble()
    }

    /// The module's whole reason to exist: the same guest-hypervisor
    /// program, run on ARMv8.3 under `EmulHyp` and on NEVE hardware,
    /// ends in the same guest-visible state.
    #[test]
    fn emul_hyp_keeps_v83_and_neve_guest_visibly_identical() {
        let prog = program(&[
            Instr::MovImm(1, 0xabcd),
            Instr::Msr(RegId::Plain(SysReg::TpidrEl2), 1),
            Instr::Mrs(2, RegId::Plain(SysReg::TpidrEl2)),
            Instr::MovImm(3, 0x40),
            Instr::Msr(RegId::Plain(SysReg::VbarEl2), 3),
            Instr::Mrs(4, RegId::Plain(SysReg::VbarEl2)),
            Instr::TlbiVmall,
            Instr::Mrs(5, RegId::Plain(SysReg::CnthctlEl2)),
        ]);
        let mut v83 = harness_machine(prog.clone(), ArchLevel::V8_3, nv_hcr(false), 1);
        let mut neve = harness_machine(prog, ArchLevel::V8_4, nv_hcr(true), 1);
        let raw = neve_core::VncrEl2::enabled_at(VNCR_PAGE).unwrap().raw();
        neve.hyp_write(0, SysReg::VncrEl2, raw);

        let mut h83 = EmulHyp::new();
        let mut hnv = EmulHyp::new();
        for _ in 0..200 {
            if v83.step(&mut h83, 0) != StepOutcome::Executed {
                break;
            }
        }
        for _ in 0..200 {
            if neve.step(&mut hnv, 0) != StepOutcome::Executed {
                break;
            }
        }
        for r in 0..31u8 {
            assert_eq!(v83.core(0).gpr(r), neve.core(0).gpr(r), "x{r} diverged");
        }
        assert_eq!(v83.core(0).pc, neve.core(0).pc);
        // NEVE eliminated the deferrable traps the v8.3 run took.
        assert!(h83.sync_traps > hnv.sync_traps);
        assert_eq!(
            v83.deferrable_sysreg_traps(),
            neve.vncr_deferrals() + neve.deferrable_sysreg_traps()
        );
    }

    #[test]
    fn boot_parks_the_core_at_the_program_with_el2_state_configured() {
        let prog = program(&[Instr::Mrs(9, RegId::Plain(SysReg::TpidrEl2))]);
        let mut m = harness_machine(prog, ArchLevel::V8_4, nv_hcr(true), 1);
        install_stage2(&mut m, 0, 5);
        let raw = neve_core::VncrEl2::enabled_at(VNCR_PAGE).unwrap().raw();
        m.hyp_write(0, SysReg::VncrEl2, raw);
        boot_harness(&mut m, 0);
        assert_eq!(m.core(0).pc, PROGRAM_BASE);
        assert_eq!(m.core(0).pstate.el, 1);
        // Boot's scratch warms landed through Stage-2.
        assert_eq!(m.mem.read_u64(SCRATCH_BASE + 8), 1);
        // The program still runs (and sees the boot-time TPIDR_EL2,
        // deferred to the access page by NEVE).
        let mut h = EmulHyp::new();
        assert_eq!(m.run(&mut h, 0, 100), StepOutcome::Halted(1));
        assert_eq!(m.core(0).gpr(9), 0x1000);
    }

    #[test]
    fn stage2_identity_mapping_translates_guest_stores() {
        let prog = program(&[
            Instr::MovImm(1, SCRATCH_BASE),
            Instr::MovImm(2, 77),
            Instr::Str(2, 1, 0),
            Instr::Ldr(3, 1, 0),
        ]);
        let mut m = harness_machine(prog, ArchLevel::V8_4, nv_hcr(true), 1);
        install_stage2(&mut m, 0, 5);
        let mut h = EmulHyp::new();
        let out = m.run(&mut h, 0, 100);
        assert_eq!(out, StepOutcome::Halted(1));
        assert_eq!(m.core(0).gpr(3), 77);
        assert_eq!(m.mem.read_u64(SCRATCH_BASE), 77);
    }

    #[test]
    fn stage2_refuses_to_map_host_owned_frames() {
        let prog = program(&[
            Instr::MovImm(1, STAGE2_POOL),
            Instr::MovImm(2, 0xdead),
            Instr::Str(2, 1, 0), // aborts: the table pool is unmapped
        ]);
        let mut m = harness_machine(prog, ArchLevel::V8_4, nv_hcr(true), 1);
        let root = install_stage2(&mut m, 0, 5);
        let before = m.mem.read_u64(root);
        let mut h = EmulHyp::new();
        let out = m.run(&mut h, 0, 100);
        assert_eq!(out, StepOutcome::Halted(1));
        // The store targeted STAGE2_POOL, which is also the root frame:
        // had it landed, the first descriptor would now read 0xdead.
        assert_eq!(m.mem.read_u64(root), before, "guest reached the tables");
        assert_ne!(m.mem.read_u64(root), 0xdead);
    }
}
