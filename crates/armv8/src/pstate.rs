//! Processor state (PSTATE).

use neve_sysreg::bits::spsr;

/// The architectural processor state the simulator tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pstate {
    /// Current exception level (0-2; EL3 is not modelled).
    pub el: u8,
    /// IRQ masked (`PSTATE.I`).
    pub irq_masked: bool,
    /// FIQ masked (`PSTATE.F`).
    pub fiq_masked: bool,
}

impl Default for Pstate {
    fn default() -> Self {
        // Cores come out of reset at the highest EL with interrupts
        // masked.
        Self {
            el: 2,
            irq_masked: true,
            fiq_masked: true,
        }
    }
}

impl Pstate {
    /// Encodes into an `SPSR_ELx` value.
    pub fn to_spsr(self) -> u64 {
        let mut v = spsr::mode_h(self.el);
        if self.irq_masked {
            v |= spsr::I;
        }
        if self.fiq_masked {
            v |= spsr::F;
        }
        v
    }

    /// Decodes from an `SPSR_ELx` value.
    pub fn from_spsr(v: u64) -> Self {
        Self {
            el: spsr::el_of(v),
            irq_masked: v & spsr::I != 0,
            fiq_masked: v & spsr::F != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsr_round_trip() {
        for el in 0..=2u8 {
            for irq in [false, true] {
                let p = Pstate {
                    el,
                    irq_masked: irq,
                    fiq_masked: !irq,
                };
                assert_eq!(Pstate::from_spsr(p.to_spsr()), p);
            }
        }
    }

    #[test]
    fn reset_state_is_el2_masked() {
        let p = Pstate::default();
        assert_eq!(p.el, 2);
        assert!(p.irq_masked);
    }
}
