//! Semantic tests for the machine: the trap architecture of paper
//! Sections 2-6, validated instruction by instruction.

use crate::isa::{Asm, Instr, Special};
use crate::machine::{ExitInfo, Hypervisor, Machine, MachineConfig, StepOutcome};
use crate::pstate::Pstate;
use crate::ArchLevel;
use neve_core::VncrEl2;
use neve_cycles::{Event, TrapKind};
use neve_gic::vgic::ICH_HCR_EN;
use neve_memsim::{FrameAlloc, PageTable, Perms};
use neve_sysreg::bits::{esr, hcr, spsr};
use neve_sysreg::classify::vncr_offset;
use neve_sysreg::{RegId, SysReg};

/// A hypervisor driven by a closure, recording every exit.
struct FnHyp<F: FnMut(&mut Machine, usize, ExitInfo)> {
    on_sync: F,
    exits: Vec<u64>,
    irqs: u64,
}

impl<F: FnMut(&mut Machine, usize, ExitInfo)> FnHyp<F> {
    fn new(on_sync: F) -> Self {
        Self {
            on_sync,
            exits: Vec::new(),
            irqs: 0,
        }
    }
}

impl<F: FnMut(&mut Machine, usize, ExitInfo)> Hypervisor for FnHyp<F> {
    fn handle_sync(&mut self, m: &mut Machine, cpu: usize, info: ExitInfo) {
        self.exits.push(esr::ec(info.esr));
        (self.on_sync)(m, cpu, info);
    }

    fn handle_irq(&mut self, m: &mut Machine, _cpu: usize) {
        self.irqs += 1;
        // Drain the interrupt so we do not spin.
        let pending: Vec<_> = (0..m.ncpus())
            .filter_map(|c| m.gic.dist.ack(c).map(|i| (c, i)))
            .collect();
        for (c, i) in pending {
            m.gic.dist.eoi(c, i);
        }
    }
}

/// A hypervisor that skips the trapped instruction (KVM's
/// `kvm_skip_instr` for traps it chooses to ignore).
fn skipping_hyp() -> FnHyp<impl FnMut(&mut Machine, usize, ExitInfo)> {
    FnHyp::new(|m: &mut Machine, cpu: usize, info: ExitInfo| {
        // hvc already has the preferred return after the instruction.
        if esr::ec(info.esr) != esr::EC_HVC64 {
            m.core_mut(cpu)
                .regs
                .write(SysReg::ElrEl2, info.elr.wrapping_add(4));
        }
    })
}

fn machine(arch: ArchLevel) -> Machine {
    Machine::new(MachineConfig {
        arch,
        ncpus: 2,
        mem_size: 1 << 32,
        cost: Default::default(),
    })
}

/// Puts `cpu` at EL1 with the given hardware HCR_EL2 and pc.
fn enter_guest(m: &mut Machine, cpu: usize, hcr_bits: u64, pc: u64) {
    m.core_mut(cpu).regs.write(SysReg::HcrEl2, hcr_bits);
    m.core_mut(cpu).pstate = Pstate {
        el: 1,
        irq_masked: true,
        fiq_masked: true,
    };
    m.core_mut(cpu).pc = pc;
}

#[test]
fn arithmetic_program_runs_and_halts() {
    let mut m = machine(ArchLevel::V8_0);
    let mut a = Asm::new(0x1000);
    let top = a.label();
    a.i(Instr::MovImm(0, 5)).i(Instr::MovImm(1, 0));
    a.bind(top);
    a.i(Instr::AddImm(1, 1, 3));
    a.i(Instr::SubImm(0, 0, 1));
    a.cbnz(0, top);
    a.i(Instr::Halt(7));
    m.load(a.assemble());
    enter_guest(&mut m, 0, 0, 0x1000);
    let mut hyp = skipping_hyp();
    let out = m.run(&mut hyp, 0, 1000);
    assert_eq!(out, StepOutcome::Halted(7));
    assert_eq!(m.core(0).gpr(1), 15);
    assert!(m.counter.cycles() > 0);
    assert_eq!(m.counter.traps_total(), 0);
}

#[test]
fn hvc_traps_to_el2_with_imm_and_returns_after() {
    let mut m = machine(ArchLevel::V8_0);
    let mut a = Asm::new(0x1000);
    a.i(Instr::Hvc(0x42))
        .i(Instr::MovImm(0, 99))
        .i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, 0, 0x1000);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(0));
    assert_eq!(hyp.exits, vec![esr::EC_HVC64]);
    assert_eq!(m.core(0).gpr(0), 99, "resumed at the next instruction");
    assert_eq!(m.counter.traps_of(TrapKind::Hvc), 1);
}

#[test]
fn hypervisor_instruction_at_el1_is_undefined_on_v8_0() {
    // Paper Section 2: "This would typically lead to an unmodified
    // hypervisor crashing if executed in EL1": the access raises an
    // exception *to EL1*, not a trap to EL2.
    let mut m = machine(ArchLevel::V8_0);
    let mut a = Asm::new(0x1000);
    a.i(Instr::Msr(RegId::Plain(SysReg::VbarEl2), 0));
    m.load(a.assemble());
    // An exception vector that halts with a recognisable code.
    let mut v = Asm::new(0x8000);
    v.org(0x200);
    v.i(Instr::Halt(0xdead));
    m.load(v.assemble());
    enter_guest(&mut m, 0, 0, 0x1000);
    m.core_mut(0).regs.write(SysReg::VbarEl1, 0x8000);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(0xdead));
    assert_eq!(m.counter.traps_total(), 0, "no trap to EL2 on v8.0");
    assert_eq!(
        esr::ec(m.core(0).regs.read(SysReg::EsrEl1)),
        esr::EC_UNKNOWN
    );
}

#[test]
fn hypervisor_instruction_traps_to_el2_with_nv() {
    // Paper Section 2: ARMv8.3 "enables trapping of hypervisor
    // instructions executed in EL1 to EL2".
    let mut m = machine(ArchLevel::V8_3);
    let mut a = Asm::new(0x1000);
    a.i(Instr::Msr(RegId::Plain(SysReg::VbarEl2), 5))
        .i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::NV, 0x1000);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(0));
    assert_eq!(hyp.exits, vec![esr::EC_SYSREG]);
    assert_eq!(m.counter.traps_of(TrapKind::SysReg), 1);
}

#[test]
fn current_el_is_disguised_under_nv() {
    // Paper Section 2: the guest hypervisor reads EL2 from CurrentEL.
    for (arch, hcr_bits, expect) in [
        (ArchLevel::V8_0, 0, 1u64 << 2),
        (ArchLevel::V8_3, hcr::NV, 2u64 << 2),
    ] {
        let mut m = machine(arch);
        let mut a = Asm::new(0x1000);
        a.i(Instr::MrsSpecial(3, Special::CurrentEl))
            .i(Instr::Halt(0));
        m.load(a.assemble());
        enter_guest(&mut m, 0, hcr_bits, 0x1000);
        let mut hyp = skipping_hyp();
        m.run(&mut hyp, 0, 10);
        assert_eq!(m.core(0).gpr(3), expect, "{arch:?}");
    }
}

#[test]
fn eret_at_el1_traps_under_nv_and_is_native_otherwise() {
    // With NV: eret from virtual EL2 traps (Section 4, third kind).
    let mut m = machine(ArchLevel::V8_3);
    let mut a = Asm::new(0x1000);
    a.i(Instr::Eret).i(Instr::Halt(1));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::NV, 0x1000);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(1));
    assert_eq!(m.counter.traps_of(TrapKind::Eret), 1);

    // Without NV: a native EL1 eret drops to EL0 via SPSR_EL1/ELR_EL1.
    let mut m = machine(ArchLevel::V8_0);
    let mut a = Asm::new(0x1000);
    a.i(Instr::Eret);
    m.load(a.assemble());
    let mut u = Asm::new(0x4000);
    u.i(Instr::Halt(2));
    m.load(u.assemble());
    enter_guest(&mut m, 0, 0, 0x1000);
    m.core_mut(0).regs.write(SysReg::ElrEl1, 0x4000);
    m.core_mut(0).regs.write(SysReg::SpsrEl1, spsr::M_EL0T);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(2));
    assert_eq!(m.core(0).pstate.el, 0);
    assert_eq!(m.counter.traps_total(), 0);
}

fn neve_machine() -> (Machine, u64) {
    let mut m = machine(ArchLevel::V8_4);
    let page = 0x9000_0000u64;
    let v = VncrEl2::enabled_at(page).unwrap().raw();
    m.hyp_write(0, SysReg::VncrEl2, v);
    (m, page)
}

#[test]
fn neve_defers_vm_register_writes_to_memory_without_trapping() {
    // Paper Section 6.1: VM system register accesses are rewritten to
    // loads/stores on the deferred access page.
    let (mut m, page) = neve_machine();
    let mut a = Asm::new(0x1000);
    a.i(Instr::MovImm(2, 0xabcd));
    a.i(Instr::Msr(RegId::Plain(SysReg::VttbrEl2), 2));
    a.i(Instr::Mrs(3, RegId::Plain(SysReg::VttbrEl2)));
    a.i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::NV | hcr::NV1 | hcr::NV2, 0x1000);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(0));
    assert_eq!(m.counter.traps_total(), 0, "no traps under NEVE");
    assert_eq!(m.core(0).gpr(3), 0xabcd, "read-back through the page");
    let off = vncr_offset(SysReg::VttbrEl2).unwrap() as u64;
    assert_eq!(m.mem.read_u64(page + off), 0xabcd, "slot holds the value");
    // The hardware register is untouched: only the page was written.
    assert_eq!(m.core(0).regs.read(SysReg::VttbrEl2), 0);
}

#[test]
fn neve_redirects_hypervisor_control_registers_to_el1() {
    // Paper Section 6.1 / Table 4: VBAR_EL2 redirects to VBAR_EL1.
    let (mut m, _) = neve_machine();
    let mut a = Asm::new(0x1000);
    a.i(Instr::MovImm(2, 0x7000));
    a.i(Instr::Msr(RegId::Plain(SysReg::VbarEl2), 2));
    a.i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::NV | hcr::NV1 | hcr::NV2, 0x1000);
    let mut hyp = skipping_hyp();
    m.run(&mut hyp, 0, 10);
    assert_eq!(m.counter.traps_total(), 0);
    assert_eq!(m.core(0).regs.read(SysReg::VbarEl1), 0x7000);
}

#[test]
fn neve_trap_on_write_registers_still_trap_writes_but_not_reads() {
    let (mut m, page) = neve_machine();
    // Host caches CNTVOFF's virtual value in the page.
    let off = vncr_offset(SysReg::CntvoffEl2).unwrap() as u64;
    m.mem.write_u64(page + off, 777);
    let mut a = Asm::new(0x1000);
    a.i(Instr::Mrs(3, RegId::Plain(SysReg::CntvoffEl2)));
    a.i(Instr::Msr(RegId::Plain(SysReg::CntvoffEl2), 3));
    a.i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::NV | hcr::NV1 | hcr::NV2, 0x1000);
    let mut hyp = skipping_hyp();
    m.run(&mut hyp, 0, 10);
    assert_eq!(m.core(0).gpr(3), 777, "read served from cached copy");
    assert_eq!(m.counter.traps_total(), 1, "write trapped");
    assert_eq!(hyp.exits, vec![esr::EC_SYSREG]);
}

#[test]
fn el1_state_accesses_trap_for_non_vhe_guest_and_defer_under_neve() {
    // v8.3 + NV1: a non-VHE guest hypervisor's SCTLR_EL1 access is a VM
    // register access and traps (paper Section 4, second kind).
    let mut m = machine(ArchLevel::V8_3);
    let mut a = Asm::new(0x1000);
    a.i(Instr::Mrs(1, RegId::Plain(SysReg::SctlrEl1)))
        .i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::NV | hcr::NV1, 0x1000);
    let mut hyp = skipping_hyp();
    m.run(&mut hyp, 0, 10);
    assert_eq!(m.counter.traps_of(TrapKind::SysReg), 1);

    // Same access with NEVE: deferred, no trap.
    let (mut m, _) = neve_machine();
    let mut a = Asm::new(0x1000);
    a.i(Instr::Mrs(1, RegId::Plain(SysReg::SctlrEl1)))
        .i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::NV | hcr::NV1 | hcr::NV2, 0x1000);
    let mut hyp = skipping_hyp();
    m.run(&mut hyp, 0, 10);
    assert_eq!(m.counter.traps_total(), 0);
}

#[test]
fn vhe_guest_el1_accesses_do_not_trap() {
    // Paper Section 5: a VHE guest hypervisor "simply accesses EL1
    // registers directly without trapping"; the host leaves NV1 clear.
    let mut m = machine(ArchLevel::V8_3);
    let mut a = Asm::new(0x1000);
    a.i(Instr::MovImm(2, 0x123));
    a.i(Instr::Msr(RegId::Plain(SysReg::SctlrEl1), 2));
    a.i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::NV, 0x1000);
    let mut hyp = skipping_hyp();
    m.run(&mut hyp, 0, 10);
    assert_eq!(m.counter.traps_total(), 0);
    assert_eq!(m.core(0).regs.read(SysReg::SctlrEl1), 0x123);
}

#[test]
fn el12_aliases_trap_on_v8_3_and_defer_under_neve() {
    // The VHE-added `*_EL12` names a VHE guest hypervisor uses for the
    // nested VM's state: always trap on v8.3 (Section 4, fourth kind)...
    let mut m = machine(ArchLevel::V8_3);
    let mut a = Asm::new(0x1000);
    a.i(Instr::Msr(RegId::El12(SysReg::SctlrEl1), 2))
        .i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::NV, 0x1000);
    let mut hyp = skipping_hyp();
    m.run(&mut hyp, 0, 10);
    assert_eq!(m.counter.traps_of(TrapKind::SysReg), 1);

    // ...and are rewritten to the page with NEVE (Section 6.4).
    let (mut m, page) = neve_machine();
    let mut a = Asm::new(0x1000);
    a.i(Instr::MovImm(2, 0x5a5a));
    a.i(Instr::Msr(RegId::El12(SysReg::SctlrEl1), 2));
    a.i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::NV | hcr::NV2, 0x1000);
    let mut hyp = skipping_hyp();
    m.run(&mut hyp, 0, 10);
    assert_eq!(m.counter.traps_total(), 0);
    let off = vncr_offset(SysReg::SctlrEl1).unwrap() as u64;
    assert_eq!(m.mem.read_u64(page + off), 0x5a5a);

    // ...and are undefined without NV (they do not exist on v8.0):
    let mut m = machine(ArchLevel::V8_0);
    let mut a = Asm::new(0x1000);
    a.i(Instr::Msr(RegId::El12(SysReg::SctlrEl1), 2));
    m.load(a.assemble());
    let mut v = Asm::new(0x8000);
    v.org(0x200);
    v.i(Instr::Halt(0xbad));
    m.load(v.assemble());
    enter_guest(&mut m, 0, 0, 0x1000);
    m.core_mut(0).regs.write(SysReg::VbarEl1, 0x8000);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(0xbad));
}

#[test]
fn virtual_interrupt_delivery_and_trap_free_eoi() {
    // The Virtual EOI microbenchmark property (Tables 1/6): acknowledge
    // and complete entirely in hardware, zero traps.
    let mut m = machine(ArchLevel::V8_3);
    // Guest: unmask IRQs via an eret to self, then wait; handler reads
    // IAR, writes EOIR, halts.
    let mut a = Asm::new(0x1000);
    a.i(Instr::Nop).i(Instr::Nop).i(Instr::B(0x1004));
    m.load(a.assemble());
    let mut v = Asm::new(0x8000);
    v.org(0x280); // IRQ from current EL
    v.i(Instr::Mrs(1, RegId::Plain(SysReg::IccIar1El1)));
    v.i(Instr::Msr(RegId::Plain(SysReg::IccEoir1El1), 1));
    v.i(Instr::Halt(0));
    m.load(v.assemble());
    enter_guest(&mut m, 0, hcr::IMO | hcr::NV, 0x1000);
    m.core_mut(0).pstate.irq_masked = false;
    m.core_mut(0).regs.write(SysReg::VbarEl1, 0x8000);
    // Hypervisor injected a virtual interrupt beforehand.
    m.gic.ich_write(0, SysReg::IchHcrEl2, ICH_HCR_EN);
    m.gic.inject_virq(0, 27, 0x80);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 50), StepOutcome::Halted(0));
    assert_eq!(m.core(0).gpr(1), 27, "acknowledged vintid");
    assert_eq!(m.counter.traps_total(), 0, "no hypervisor involvement");
    assert_eq!(
        m.gic.ich_read(0, SysReg::IchEisrEl2),
        1,
        "EOI latched for the hypervisor"
    );
}

#[test]
fn stage2_abort_delivers_mmio_request() {
    let mut m = machine(ArchLevel::V8_3);
    // Identity stage-2 for RAM, nothing at the device address.
    let mut frames = FrameAlloc::new(0x0100_0000, 0x40_0000);
    let s2 = PageTable::new(&mut m.mem, &mut frames);
    for p in 0..16u64 {
        s2.map(&mut m.mem, &mut frames, p * 4096, p * 4096, Perms::RWX);
    }
    m.core_mut(0).regs.write(
        SysReg::VttbrEl2,
        neve_sysreg::bits::vttbr::build(1, s2.root),
    );
    let mut a = Asm::new(0x1000);
    a.i(Instr::MovImm(1, 0x0900_0000)); // device address, unmapped
    a.i(Instr::Ldr(2, 1, 8));
    a.i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::VM, 0x1000);
    let mut hyp = FnHyp::new(|m: &mut Machine, cpu: usize, info: ExitInfo| {
        let req = m.take_mmio(cpu).expect("mmio request");
        assert!(!req.write);
        assert_eq!(req.ipa, 0x0900_0008);
        m.complete_mmio_read(cpu, req, 0xfeed);
        m.core_mut(cpu)
            .regs
            .write(SysReg::ElrEl2, info.elr.wrapping_add(4));
    });
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(0));
    assert_eq!(m.core(0).gpr(2), 0xfeed);
    assert_eq!(m.counter.traps_of(TrapKind::Stage2Abort), 1);
}

#[test]
fn two_stage_translation_and_tlb_reuse() {
    let mut m = machine(ArchLevel::V8_3);
    let mut frames = FrameAlloc::new(0x0100_0000, 0x40_0000);
    // Stage-1: VA 0x20_0000 -> IPA 0x30_0000.
    let s1 = PageTable::new(&mut m.mem, &mut frames);
    s1.map(&mut m.mem, &mut frames, 0x20_0000, 0x30_0000, Perms::RWX);
    // Stage-2: IPA 0x30_0000 -> PA 0x40_0000, plus the S1 table pages
    // themselves (identity) so the walker can read them... the hardware
    // walker reads S1 descriptors as *physical* in this simulator
    // (documented simplification), so no extra mappings needed.
    let s2 = PageTable::new(&mut m.mem, &mut frames);
    s2.map(&mut m.mem, &mut frames, 0x30_0000, 0x40_0000, Perms::RWX);
    m.mem.write_u64(0x40_0018, 4242);
    m.core_mut(0).regs.write(SysReg::SctlrEl1, 1);
    m.core_mut(0).regs.write(SysReg::Ttbr0El1, s1.root);
    m.core_mut(0).regs.write(
        SysReg::VttbrEl2,
        neve_sysreg::bits::vttbr::build(3, s2.root),
    );
    let mut a = Asm::new(0x1000);
    a.i(Instr::MovImm(1, 0x20_0000));
    a.i(Instr::Ldr(2, 1, 0x18));
    a.i(Instr::Ldr(3, 1, 0x18));
    a.i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::VM, 0x1000);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(0));
    assert_eq!(m.core(0).gpr(2), 4242);
    assert_eq!(m.core(0).gpr(3), 4242);
    let (hits, misses, _) = m.tlb.stats();
    assert_eq!(misses, 1, "first access walks");
    assert_eq!(hits, 1, "second access hits the TLB");
}

#[test]
fn sgi_write_traps_for_vms() {
    // The send half of the Virtual IPI microbenchmark: SGI generation
    // from a VM traps to the hypervisor for emulation (Section 5).
    let mut m = machine(ArchLevel::V8_3);
    let mut a = Asm::new(0x1000);
    a.i(Instr::MovImm(1, 0b10)); // target cpu 1
    a.i(Instr::Msr(RegId::Plain(SysReg::IccSgi1rEl1), 1));
    a.i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::IMO, 0x1000);
    let mut hyp = skipping_hyp();
    m.run(&mut hyp, 0, 10);
    assert_eq!(m.counter.traps_of(TrapKind::SysReg), 1);
}

#[test]
fn wfi_traps_with_twi_and_idles_without() {
    let mut m = machine(ArchLevel::V8_3);
    let mut a = Asm::new(0x1000);
    a.i(Instr::Wfi).i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::TWI, 0x1000);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(0));
    assert_eq!(m.counter.traps_of(TrapKind::Wfx), 1);

    let mut m = machine(ArchLevel::V8_3);
    let mut a = Asm::new(0x1000);
    a.i(Instr::Wfi).i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, 0, 0x1000);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Wfi);
}

#[test]
fn physical_irq_routes_to_el2_with_imo() {
    let mut m = machine(ArchLevel::V8_3);
    let mut a = Asm::new(0x1000);
    a.i(Instr::Nop).i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::IMO, 0x1000);
    m.gic.dist.enable(0, 40);
    m.gic.dist.set_spi_target(40, 0);
    m.gic.dist.raise_spi(40);
    let mut hyp = skipping_hyp();
    m.run(&mut hyp, 0, 10);
    assert_eq!(hyp.irqs, 1);
    assert_eq!(m.counter.traps_of(TrapKind::Irq), 1);
}

#[test]
fn smc_traps_with_tsc() {
    let mut m = machine(ArchLevel::V8_3);
    let mut a = Asm::new(0x1000);
    a.i(Instr::Smc(1)).i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::TSC, 0x1000);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(0));
    assert_eq!(m.counter.traps_of(TrapKind::Smc), 1);
}

#[test]
fn trap_costs_match_section_5_measurements() {
    // The §5 validation: an hvc round trip costs trap-in (68-76) +
    // trap-out (65) plus nothing else when the handler does no work.
    let mut m = machine(ArchLevel::V8_0);
    let mut a = Asm::new(0x1000);
    a.i(Instr::Hvc(0)).i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, 0, 0x1000);
    let mut hyp = skipping_hyp();
    let snap = m.counter.snapshot();
    m.run(&mut hyp, 0, 10);
    let d = m.counter.delta_since(&snap);
    // hvc (free) + trap enter + trap return + halt fetch.
    assert!(
        (130..160).contains(&d.cycles),
        "round trip cost {} outside the §5 band",
        d.cycles
    );
}

#[test]
fn neve_disabled_vncr_means_v8_3_behaviour_even_on_v8_4() {
    // NV2 hardware with VNCR.Enable clear falls back to trapping.
    let mut m = machine(ArchLevel::V8_4);
    m.hyp_write(0, SysReg::VncrEl2, 0); // disabled
    let mut a = Asm::new(0x1000);
    a.i(Instr::Msr(RegId::Plain(SysReg::VttbrEl2), 2))
        .i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::NV | hcr::NV1 | hcr::NV2, 0x1000);
    let mut hyp = skipping_hyp();
    m.run(&mut hyp, 0, 10);
    assert_eq!(m.counter.traps_of(TrapKind::SysReg), 1);
}

#[test]
fn gic_ich_registers_are_cached_reads_trap_writes_under_neve() {
    // Paper Table 5: list registers are cached copies.
    let (mut m, page) = neve_machine();
    let off = vncr_offset(SysReg::IchLrEl2(0)).unwrap() as u64;
    m.mem.write_u64(page + off, 0x1234);
    let mut a = Asm::new(0x1000);
    a.i(Instr::Mrs(1, RegId::Plain(SysReg::IchLrEl2(0))));
    a.i(Instr::Msr(RegId::Plain(SysReg::IchLrEl2(0)), 1));
    a.i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, hcr::NV | hcr::NV1 | hcr::NV2, 0x1000);
    let mut hyp = skipping_hyp();
    m.run(&mut hyp, 0, 10);
    assert_eq!(m.core(0).gpr(1), 0x1234, "read from cached copy");
    assert_eq!(m.counter.traps_total(), 1, "write trapped");
}

#[test]
fn vhe_redirects_el1_names_to_el2_registers_at_el2() {
    // ARMv8.1 VHE (paper Section 2): with E2H set, EL1-named accesses
    // *at EL2* reach the EL2 registers, so an unmodified OS kernel runs
    // in EL2. (Guest programs normally never run at EL2 in the test
    // bed; this exercises the architectural path directly.)
    let mut m = machine(ArchLevel::V8_1);
    let mut a = Asm::new(0x1000);
    a.i(Instr::MovImm(2, 0x777));
    a.i(Instr::Msr(RegId::Plain(SysReg::VbarEl1), 2)); // redirected
    a.i(Instr::Halt(0));
    m.load(a.assemble());
    m.core_mut(0).pstate = Pstate {
        el: 2,
        irq_masked: true,
        fiq_masked: true,
    };
    m.core_mut(0).pc = 0x1000;
    m.core_mut(0).regs.write(SysReg::HcrEl2, hcr::E2H);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(0));
    assert_eq!(m.core(0).regs.read(SysReg::VbarEl2), 0x777, "redirected");
    assert_eq!(m.core(0).regs.read(SysReg::VbarEl1), 0, "EL1 untouched");
}

#[test]
fn el12_aliases_reach_el1_storage_from_el2_under_vhe() {
    let mut m = machine(ArchLevel::V8_1);
    let mut a = Asm::new(0x1000);
    a.i(Instr::MovImm(2, 0x123));
    a.i(Instr::Msr(RegId::El12(SysReg::SctlrEl1), 2));
    a.i(Instr::Mrs(3, RegId::El12(SysReg::SctlrEl1)));
    a.i(Instr::Halt(0));
    m.load(a.assemble());
    m.core_mut(0).pstate = Pstate {
        el: 2,
        irq_masked: true,
        fiq_masked: true,
    };
    m.core_mut(0).pc = 0x1000;
    m.core_mut(0).regs.write(SysReg::HcrEl2, hcr::E2H);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(0));
    assert_eq!(m.core(0).regs.read(SysReg::SctlrEl1), 0x123);
    assert_eq!(m.core(0).gpr(3), 0x123);
}

#[test]
fn out_of_range_physical_access_aborts_instead_of_panicking() {
    // A guest with the MMU off and a wild pointer takes an external
    // abort to its own EL1 — never a simulator panic.
    let mut m = machine(ArchLevel::V8_0);
    let mut a = Asm::new(0x1000);
    a.i(Instr::MovImm(1, 1 << 62));
    a.i(Instr::Ldr(2, 1, 0));
    m.load(a.assemble());
    let mut v = Asm::new(0x8000);
    v.org(0x200);
    v.i(Instr::Halt(0xab));
    m.load(v.assemble());
    enter_guest(&mut m, 0, 0, 0x1000);
    m.core_mut(0).regs.write(SysReg::VbarEl1, 0x8000);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(0xab));
}

#[test]
fn tlb_caches_walked_perms_and_permission_miss_rewalks_like_cold_miss() {
    // The TLB must cache the permissions the walk actually returned
    // (not a blanket RWX), so a later access the page does not permit
    // re-walks and faults instead of silently succeeding from the
    // cache. The re-walk reaches the leaf before the permission check,
    // so it charges PageWalkLevel exactly like the cold miss did.
    let mut m = machine(ArchLevel::V8_3);
    let mut frames = FrameAlloc::new(0x0100_0000, 0x40_0000);
    let s1 = PageTable::new(&mut m.mem, &mut frames);
    let ro = Perms {
        r: true,
        w: false,
        x: false,
    };
    s1.map(&mut m.mem, &mut frames, 0x20_0000, 0x30_0000, ro);
    m.core_mut(0).regs.write(SysReg::SctlrEl1, 1);
    m.core_mut(0).regs.write(SysReg::Ttbr0El1, s1.root);
    let mut a = Asm::new(0x1000);
    a.i(Instr::MovImm(1, 0x20_0000));
    a.i(Instr::Ldr(2, 1, 0)); // cold miss: full walk
    a.i(Instr::Ldr(3, 1, 0)); // TLB hit, read permitted
    a.i(Instr::Str(1, 1, 0)); // hit, but write not cached as allowed
    a.i(Instr::Halt(9));
    m.load(a.assemble());
    let mut v = Asm::new(0x8000);
    v.org(0x200);
    v.i(Instr::Halt(0xab));
    m.load(v.assemble());
    enter_guest(&mut m, 0, 0, 0x1000);
    m.core_mut(0).regs.write(SysReg::VbarEl1, 0x8000);
    let mut hyp = skipping_hyp();

    assert_eq!(m.step(&mut hyp, 0), StepOutcome::Executed); // MovImm
    assert_eq!(m.step(&mut hyp, 0), StepOutcome::Executed); // cold Ldr
    let cold_walk = m.counter.events_of(Event::PageWalkLevel);
    assert!(cold_walk > 0, "cold miss must walk");
    assert_eq!(m.step(&mut hyp, 0), StepOutcome::Executed); // warm Ldr
    assert_eq!(
        m.counter.events_of(Event::PageWalkLevel),
        cold_walk,
        "TLB hit must not walk"
    );
    assert_eq!(m.step(&mut hyp, 0), StepOutcome::Executed); // Str
    assert_eq!(
        m.counter.events_of(Event::PageWalkLevel),
        2 * cold_walk,
        "permission-mismatched hit re-walks exactly like a cold miss"
    );
    // The write permission-faulted into the guest's own EL1 vector —
    // no hypervisor trap, and the cached RO entry never honored it.
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(0xab));
    assert_eq!(m.counter.traps_total(), 0);
    let (hits, misses, _) = m.tlb.stats();
    assert_eq!(misses, 1, "only the first access misses");
    assert_eq!(hits, 2, "warm read and the mismatched write both hit");
}

#[test]
fn oversized_shift_immediates_wrap_instead_of_panicking() {
    // `lsl/lsr` with a shift >= 64 used to panic the interpreter in
    // debug builds; AArch64 semantics take the amount modulo the
    // register width.
    let mut m = machine(ArchLevel::V8_0);
    let mut a = Asm::new(0x1000);
    a.i(Instr::MovImm(1, 0xabcd));
    a.i(Instr::LslImm(2, 1, 64)); // == shift by 0
    a.i(Instr::LsrImm(3, 1, 68)); // == shift by 4
    a.i(Instr::LslImm(4, 1, 63));
    a.i(Instr::Halt(0));
    m.load(a.assemble());
    enter_guest(&mut m, 0, 0, 0x1000);
    let mut hyp = skipping_hyp();
    assert_eq!(m.run(&mut hyp, 0, 10), StepOutcome::Halted(0));
    assert_eq!(m.core(0).gpr(2), 0xabcd);
    assert_eq!(m.core(0).gpr(3), 0xabcd >> 4);
    assert_eq!(m.core(0).gpr(4), 0xabcd_u64.wrapping_shl(63));
}

#[test]
fn observers_force_the_reference_interpreter() {
    use crate::fault::FaultPlan;
    use crate::uop::Engine;
    let mut m = machine(ArchLevel::V8_3);
    assert_eq!(m.active_engine(), Engine::Uop, "uop engine is the default");
    m.attach_checker();
    assert_eq!(
        m.active_engine(),
        Engine::Interp,
        "a checker must force the oracle interpreter"
    );
    assert!(m.take_checker().is_some());
    assert_eq!(
        m.active_engine(),
        Engine::Uop,
        "detaching restores the fast path"
    );
    m.attach_trace(16);
    assert_eq!(
        m.active_engine(),
        Engine::Interp,
        "a trace must force the oracle interpreter"
    );
    let mut m2 = machine(ArchLevel::V8_3);
    m2.attach_fault_plan(FaultPlan::new(vec![]));
    assert_eq!(
        m2.active_engine(),
        Engine::Interp,
        "a fault plan must force the oracle interpreter"
    );
    let mut m3 = machine(ArchLevel::V8_3);
    m3.set_engine(Engine::Interp);
    assert_eq!(m3.active_engine(), Engine::Interp);
    m3.set_engine(Engine::Uop);
    assert_eq!(m3.active_engine(), Engine::Uop);
}

#[test]
fn replace_program_invalidates_stale_fetch_hints() {
    use crate::uop::Engine;
    for engine in [Engine::Uop, Engine::Interp] {
        let mut m = machine(ArchLevel::V8_3);
        m.set_engine(engine);
        // Two disjoint programs; execute inside the second so cpu 0's
        // fetch hint points at its entry.
        let mut a = Asm::new(0x10_0000);
        a.i(Instr::MovImm(0, 1));
        a.i(Instr::Halt(1));
        m.load(a.assemble());
        let mut b = Asm::new(0x20_0000);
        b.i(Instr::MovImm(1, 7));
        b.i(Instr::MovImm(2, 8));
        b.i(Instr::Halt(2));
        m.load(b.assemble());
        enter_guest(&mut m, 0, 0, 0x20_0000);
        let mut hyp = skipping_hyp();
        assert_eq!(m.step(&mut hyp, 0), StepOutcome::Executed);
        assert_eq!(m.core(0).gpr(1), 7);
        // Replace the program under the warm hint: same range,
        // different code. The stale hint must never serve the old
        // image, and the pre-decoded micro-ops must be rebuilt too.
        let mut nb = Asm::new(0x20_0000);
        nb.i(Instr::MovImm(3, 99));
        nb.i(Instr::Halt(3));
        assert_eq!(m.replace_program(nb.assemble()), 1);
        assert_eq!(m.peek(0x20_0000), Some(Instr::MovImm(3, 99)));
        assert_eq!(
            m.compiled_programs()
                .iter()
                .map(|c| c.base)
                .collect::<Vec<_>>(),
            vec![0x10_0000, 0x20_0000],
            "compiled images track the program list"
        );
        m.core_mut(0).pc = 0x20_0000;
        assert_eq!(m.step(&mut hyp, 0), StepOutcome::Executed);
        assert_eq!(m.core(0).gpr(3), 99, "engine {engine:?} fetched stale code");
        assert_eq!(m.step(&mut hyp, 0), StepOutcome::Halted(3));
    }
}

#[test]
fn replace_program_unloads_every_overlapping_image() {
    let prog = |base: u64, n: usize| {
        let mut a = Asm::new(base);
        for _ in 0..n {
            a.i(Instr::Nop);
        }
        a.assemble()
    };
    let mut m = machine(ArchLevel::V8_3);
    m.load(prog(0x1000, 2)); // [0x1000, 0x1008)
    m.load(prog(0x1010, 2)); // [0x1010, 0x1018)
                             // [0x1004, 0x1014) straddles both.
    assert_eq!(m.replace_program(prog(0x1004, 4)), 2);
    assert_eq!(m.compiled_programs().len(), 1);
    assert_eq!(m.peek(0x1000), None, "unloaded range must not fetch");
    assert_eq!(m.peek(0x1004), Some(Instr::Nop));
    // Replacing a vacant range removes nothing.
    assert_eq!(m.replace_program(prog(0x8000, 1)), 0);
}
