//! Property-based tests on interrupt-lifecycle invariants.

use neve_gic::lr::{ListRegister, LrState};
use neve_gic::vgic::{Gic, ICH_HCR_EN};
use neve_sysreg::regs::{SysReg, NUM_LIST_REGS};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Inject(u32),
    Ack,
    Eoi(u32),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (32u32..64).prop_map(Op::Inject),
        Just(Op::Ack),
        (32u32..64).prop_map(Op::Eoi),
    ]
}

proptest! {
    /// Under any inject/ack/eoi interleaving: at most one LR holds a
    /// given vintid in a non-empty state, acknowledge returns only
    /// previously injected ids, and the occupied-LR count never exceeds
    /// the hardware's.
    #[test]
    fn prop_lifecycle_invariants(ops in proptest::collection::vec(op(), 1..80)) {
        let mut g = Gic::new(1);
        g.ich_write(0, SysReg::IchHcrEl2, ICH_HCR_EN);
        let mut injected = std::collections::HashSet::new();
        for o in ops {
            match o {
                Op::Inject(id) => {
                    if !injected.contains(&id) && g.inject_virq(0, id, 0x80).is_some() {
                        injected.insert(id);
                    }
                }
                Op::Ack => {
                    if let Some(id) = g.virq_ack(0) {
                        prop_assert!(injected.contains(&id), "acked unknown {id}");
                    }
                }
                Op::Eoi(id) => {
                    if g.virq_eoi(0, id) {
                        injected.remove(&id);
                    }
                }
            }
            // Invariant: occupied LRs <= hardware count, no duplicate
            // vintids among occupied LRs.
            let mut seen = std::collections::HashSet::new();
            let mut occupied = 0;
            for n in 0..NUM_LIST_REGS {
                let lr = ListRegister::decode(g.ich_read(0, SysReg::IchLrEl2(n)));
                if lr.state != LrState::Invalid {
                    occupied += 1;
                    prop_assert!(seen.insert(lr.vintid), "duplicate {}", lr.vintid);
                }
            }
            prop_assert!(occupied <= NUM_LIST_REGS as usize);
            // ELRSR stays consistent with the LR states.
            let elrsr = g.ich_read(0, SysReg::IchElrsrEl2);
            for n in 0..NUM_LIST_REGS {
                let lr = ListRegister::decode(g.ich_read(0, SysReg::IchLrEl2(n)));
                let empty_bit = elrsr & (1 << n) != 0;
                prop_assert_eq!(empty_bit, lr.state == LrState::Invalid);
            }
        }
    }

    /// Acknowledge order respects priority: an acked interrupt never has
    /// lower urgency (higher priority value) than one still pending.
    #[test]
    fn prop_ack_respects_priority(prios in proptest::collection::vec(0u8..=255, 2..4)) {
        let mut g = Gic::new(1);
        g.ich_write(0, SysReg::IchHcrEl2, ICH_HCR_EN);
        for (i, p) in prios.iter().enumerate() {
            g.inject_virq(0, 32 + i as u32, *p);
        }
        let first = g.virq_ack(0).expect("something pending");
        let first_prio = prios[(first - 32) as usize];
        for n in 0..NUM_LIST_REGS {
            let lr = ListRegister::decode(g.ich_read(0, SysReg::IchLrEl2(n)));
            if lr.state == LrState::Pending {
                prop_assert!(lr.priority >= first_prio);
            }
        }
    }
}
