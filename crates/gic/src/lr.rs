//! List-register encoding (`ICH_LR<n>_EL2`).

use crate::dist::IntId;

/// State field of a list register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LrState {
    /// Empty/invalid.
    Invalid,
    /// Virtual interrupt pending for the VM.
    Pending,
    /// Acknowledged by the VM, not yet completed.
    Active,
    /// Both pending and active.
    PendingActive,
}

impl LrState {
    fn to_bits(self) -> u64 {
        match self {
            LrState::Invalid => 0,
            LrState::Pending => 1,
            LrState::Active => 2,
            LrState::PendingActive => 3,
        }
    }

    fn from_bits(b: u64) -> Self {
        match b & 0b11 {
            0 => LrState::Invalid,
            1 => LrState::Pending,
            2 => LrState::Active,
            _ => LrState::PendingActive,
        }
    }
}

/// A decoded list register.
///
/// Field layout follows `ICH_LR<n>_EL2`: virtual INTID in `[31:0]`,
/// physical INTID in `[41:32]`, priority in `[55:48]`, HW bit 61 is folded
/// into [`ListRegister::hw`], state in `[63:62]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListRegister {
    /// Virtual interrupt ID presented to the VM.
    pub vintid: IntId,
    /// Linked physical interrupt (deactivated in the distributor when the
    /// VM completes the virtual one), if `hw`.
    pub pintid: IntId,
    /// Priority (lower value is more urgent).
    pub priority: u8,
    /// Hardware-linked interrupt.
    pub hw: bool,
    /// Occupancy state.
    pub state: LrState,
}

impl ListRegister {
    /// An empty list register.
    pub const EMPTY: ListRegister = ListRegister {
        vintid: 0,
        pintid: 0,
        priority: 0,
        hw: false,
        state: LrState::Invalid,
    };

    /// A software-injected pending virtual interrupt.
    pub fn pending(vintid: IntId, priority: u8) -> Self {
        Self {
            vintid,
            pintid: 0,
            priority,
            hw: false,
            state: LrState::Pending,
        }
    }

    /// Encodes to the architectural 64-bit format.
    pub fn encode(self) -> u64 {
        (self.vintid as u64 & 0xffff_ffff)
            | ((self.pintid as u64 & 0x3ff) << 32)
            | ((self.priority as u64) << 48)
            | ((self.hw as u64) << 61)
            | (self.state.to_bits() << 62)
    }

    /// Decodes from the architectural 64-bit format.
    pub fn decode(raw: u64) -> Self {
        Self {
            vintid: (raw & 0xffff_ffff) as IntId,
            pintid: ((raw >> 32) & 0x3ff) as IntId,
            priority: ((raw >> 48) & 0xff) as u8,
            hw: raw & (1 << 61) != 0,
            state: LrState::from_bits(raw >> 62),
        }
    }

    /// True when the register holds nothing.
    pub fn is_empty(self) -> bool {
        self.state == LrState::Invalid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_round_trip() {
        let lr = ListRegister {
            vintid: 27,
            pintid: 27,
            priority: 0xa0,
            hw: true,
            state: LrState::Pending,
        };
        assert_eq!(ListRegister::decode(lr.encode()), lr);
    }

    #[test]
    fn empty_encodes_to_zero() {
        assert_eq!(ListRegister::EMPTY.encode(), 0);
        assert!(ListRegister::decode(0).is_empty());
    }

    #[test]
    fn state_bits_are_top_bits() {
        let lr = ListRegister::pending(1, 0);
        assert_eq!(lr.encode() >> 62, 1);
    }

    proptest! {
        #[test]
        fn prop_round_trip(vintid in 0u32..1020, pintid in 0u32..1020,
                           priority: u8, hw: bool, state in 0u64..4) {
            let lr = ListRegister {
                vintid,
                pintid: pintid & 0x3ff,
                priority,
                hw,
                state: LrState::from_bits(state),
            };
            prop_assert_eq!(ListRegister::decode(lr.encode()), lr);
        }
    }
}
