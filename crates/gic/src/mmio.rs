//! GICv2-style memory-mapped hypervisor control interface.
//!
//! With GICv2 the hypervisor control interface (`GICH_*`) is a
//! memory-mapped window rather than system registers, so a *guest*
//! hypervisor's accesses "trivially trap to EL2 when not mapped in the
//! Stage-2 page tables" (paper Section 4). The simulator exposes the same
//! state as the GICv3 `ICH_*` system registers through a register block
//! at [`GICH_SIZE`]-byte granularity; the offsets follow the GICv2 layout
//! widened to 8-byte slots (the paper notes the v2/v3 programming
//! interfaces are almost identical, Section 7).

use crate::vgic::Gic;
use neve_sysreg::regs::{SysReg, NUM_LIST_REGS};

/// Byte size of the GICH register frame.
pub const GICH_SIZE: u64 = 0x200;

/// Offset of `GICH_HCR`.
pub const GICH_HCR: u64 = 0x00;
/// Offset of `GICH_VTR`.
pub const GICH_VTR: u64 = 0x08;
/// Offset of `GICH_VMCR`.
pub const GICH_VMCR: u64 = 0x10;
/// Offset of `GICH_MISR`.
pub const GICH_MISR: u64 = 0x18;
/// Offset of `GICH_EISR`.
pub const GICH_EISR: u64 = 0x20;
/// Offset of `GICH_ELRSR`.
pub const GICH_ELRSR: u64 = 0x28;
/// Offset of `GICH_APR0`.
pub const GICH_APR0: u64 = 0x30;
/// Offset of `GICH_APR1`.
pub const GICH_APR1: u64 = 0x38;
/// Offset of the first list register; subsequent LRs at 8-byte stride.
pub const GICH_LR_BASE: u64 = 0x100;

/// Maps a GICH frame offset to the equivalent `ICH_*` system register.
pub fn reg_at(offset: u64) -> Option<SysReg> {
    match offset {
        GICH_HCR => Some(SysReg::IchHcrEl2),
        GICH_VTR => Some(SysReg::IchVtrEl2),
        GICH_VMCR => Some(SysReg::IchVmcrEl2),
        GICH_MISR => Some(SysReg::IchMisrEl2),
        GICH_EISR => Some(SysReg::IchEisrEl2),
        GICH_ELRSR => Some(SysReg::IchElrsrEl2),
        GICH_APR0 => Some(SysReg::IchAp0rEl2(0)),
        GICH_APR1 => Some(SysReg::IchAp1rEl2(0)),
        o if (GICH_LR_BASE..GICH_LR_BASE + 8 * NUM_LIST_REGS as u64).contains(&o) && o % 8 == 0 => {
            Some(SysReg::IchLrEl2(((o - GICH_LR_BASE) / 8) as u8))
        }
        _ => None,
    }
}

impl Gic {
    /// Reads the GICH frame at `offset` for `cpu` (returns 0 for holes,
    /// like RAZ/WI hardware).
    pub fn gich_mmio_read(&self, cpu: usize, offset: u64) -> u64 {
        match reg_at(offset) {
            Some(reg) => self.ich_read(cpu, reg),
            None => 0,
        }
    }

    /// Writes the GICH frame at `offset` for `cpu` (holes ignored).
    pub fn gich_mmio_write(&mut self, cpu: usize, offset: u64, value: u64) {
        if let Some(reg) = reg_at(offset) {
            self.ich_write(cpu, reg, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lr::ListRegister;
    use crate::vgic::ICH_HCR_EN;

    #[test]
    fn offsets_map_to_ich_registers() {
        assert_eq!(reg_at(GICH_HCR), Some(SysReg::IchHcrEl2));
        assert_eq!(reg_at(GICH_LR_BASE), Some(SysReg::IchLrEl2(0)));
        assert_eq!(reg_at(GICH_LR_BASE + 16), Some(SysReg::IchLrEl2(2)));
        assert_eq!(reg_at(0x48), None);
        assert_eq!(reg_at(GICH_LR_BASE + 8 * NUM_LIST_REGS as u64), None);
        assert_eq!(reg_at(GICH_LR_BASE + 4), None, "unaligned");
    }

    #[test]
    fn mmio_and_sysreg_paths_share_state() {
        let mut g = Gic::new(1);
        g.gich_mmio_write(0, GICH_HCR, ICH_HCR_EN);
        assert_eq!(g.ich_read(0, SysReg::IchHcrEl2), ICH_HCR_EN);
        let lr = ListRegister::pending(34, 0).encode();
        g.ich_write(0, SysReg::IchLrEl2(1), lr);
        assert_eq!(g.gich_mmio_read(0, GICH_LR_BASE + 8), lr);
    }

    #[test]
    fn holes_read_zero_and_ignore_writes() {
        let mut g = Gic::new(1);
        g.gich_mmio_write(0, 0x48, 0xdead);
        assert_eq!(g.gich_mmio_read(0, 0x48), 0);
    }
}
