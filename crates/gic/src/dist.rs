//! The GIC distributor: interrupt state and routing.

/// An interrupt identifier.
///
/// 0-15 are SGIs (inter-processor interrupts), 16-31 PPIs (per-CPU
/// peripherals such as the generic timers), 32+ SPIs (shared
/// peripherals such as network devices).
pub type IntId = u32;

/// Highest modelled INTID (exclusive).
pub const INTID_LIMIT: IntId = 256;

/// First SPI.
pub const SPI_BASE: IntId = 32;

/// Per-interrupt, per-CPU state in the distributor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct IrqState {
    pending: bool,
    active: bool,
    enabled: bool,
}

/// The distributor: SGI/PPI state per CPU, SPI state shared with a
/// target CPU.
#[derive(Debug)]
pub struct Distributor {
    ncpus: usize,
    /// Banked SGI/PPI state: `[cpu][intid]` for intid < 32.
    banked: Vec<[IrqState; SPI_BASE as usize]>,
    /// Shared SPI state.
    spis: Vec<IrqState>,
    /// SPI target CPU.
    spi_target: Vec<usize>,
    /// Group enable (GICD_CTLR).
    pub enabled: bool,
    /// Count of banked interrupts currently in the *pending* state,
    /// per CPU. [`Distributor::pending_for`] runs before every
    /// interpreter step; these exact counts let it skip the scan in
    /// the (overwhelmingly common) nothing-pending case without ever
    /// changing what it returns.
    pending_banked: Vec<u32>,
    /// Count of SPIs currently pending (shared across CPUs).
    pending_spis: u32,
    /// Mutation epoch: bumped whenever distributor state that feeds
    /// [`Distributor::pending_for`] may have changed. Lets callers
    /// cache "nothing pending" verdicts and revalidate with a single
    /// load instead of re-scanning.
    epoch: u64,
    /// Per-CPU mutation epochs: `epochs[cpu]` is bumped only by
    /// changes that can alter `pending_for(cpu)` — banked state of
    /// `cpu`, or an SPI targeting it. See [`Distributor::epoch_of`].
    epochs: Vec<u64>,
}

impl Clone for Distributor {
    fn clone(&self) -> Self {
        Self {
            ncpus: self.ncpus,
            banked: self.banked.clone(),
            spis: self.spis.clone(),
            spi_target: self.spi_target.clone(),
            enabled: self.enabled,
            pending_banked: self.pending_banked.clone(),
            pending_spis: self.pending_spis,
            epoch: self.epoch,
            epochs: self.epochs.clone(),
        }
    }

    /// Allocation-free when shapes match (they always do between a
    /// machine and its own snapshot): straight `memcpy` of the
    /// interrupt state. Machine restore runs this per fuzz case.
    fn clone_from(&mut self, source: &Self) {
        self.ncpus = source.ncpus;
        copy_vec(&mut self.banked, &source.banked);
        copy_vec(&mut self.spis, &source.spis);
        copy_vec(&mut self.spi_target, &source.spi_target);
        self.enabled = source.enabled;
        copy_vec(&mut self.pending_banked, &source.pending_banked);
        self.pending_spis = source.pending_spis;
        self.epoch = source.epoch;
        copy_vec(&mut self.epochs, &source.epochs);
    }
}

/// `Vec` copy that reuses the destination buffer when lengths match.
fn copy_vec<T: Copy>(dst: &mut Vec<T>, src: &[T]) {
    if dst.len() == src.len() {
        dst.copy_from_slice(src);
    } else {
        dst.clear();
        dst.extend_from_slice(src);
    }
}

impl Distributor {
    /// Creates a distributor for `ncpus` CPUs.
    pub fn new(ncpus: usize) -> Self {
        assert!(ncpus >= 1);
        Self {
            ncpus,
            banked: vec![[IrqState::default(); SPI_BASE as usize]; ncpus],
            spis: vec![IrqState::default(); (INTID_LIMIT - SPI_BASE) as usize],
            spi_target: vec![0; (INTID_LIMIT - SPI_BASE) as usize],
            enabled: true,
            pending_banked: vec![0; ncpus],
            pending_spis: 0,
            epoch: 0,
            epochs: vec![0; ncpus],
        }
    }

    /// The mutation epoch. Strictly increases across any state change
    /// that could alter a future [`Distributor::pending_for`] answer.
    /// A raise of an *already-pending* line does not bump it — such a
    /// raise is a no-op on distributor state.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The per-CPU mutation epoch: strictly increases across any state
    /// change that could alter a future `pending_for(cpu)` answer for
    /// *this* CPU, and holds still across changes that cannot (other
    /// CPUs' banked state, SPIs targeting other CPUs). A parked core's
    /// cached "nothing deliverable" verdict stays valid while this
    /// value does not move.
    #[inline]
    pub fn epoch_of(&self, cpu: usize) -> u64 {
        self.epochs[cpu]
    }

    /// Bumps both the global epoch and `cpu`'s epoch.
    fn bump(&mut self, cpu: usize) {
        self.epoch += 1;
        self.epochs[cpu] += 1;
    }

    /// The one CPU whose `pending_for` answer can change when `intid`'s
    /// state does: the banked owner, or the SPI's current target.
    fn affected_cpu(&self, cpu: usize, intid: IntId) -> usize {
        if intid < SPI_BASE {
            cpu
        } else {
            self.spi_target[(intid - SPI_BASE) as usize]
        }
    }

    /// CPUs attached.
    pub fn ncpus(&self) -> usize {
        self.ncpus
    }

    fn state(&mut self, cpu: usize, intid: IntId) -> &mut IrqState {
        assert!(intid < INTID_LIMIT, "intid {intid} out of range");
        if intid < SPI_BASE {
            &mut self.banked[cpu][intid as usize]
        } else {
            &mut self.spis[(intid - SPI_BASE) as usize]
        }
    }

    fn state_ref(&self, cpu: usize, intid: IntId) -> &IrqState {
        assert!(intid < INTID_LIMIT, "intid {intid} out of range");
        if intid < SPI_BASE {
            &self.banked[cpu][intid as usize]
        } else {
            &self.spis[(intid - SPI_BASE) as usize]
        }
    }

    /// Enables an interrupt for `cpu` (banked) or globally (SPI).
    pub fn enable(&mut self, cpu: usize, intid: IntId) {
        self.bump(self.affected_cpu(cpu, intid));
        self.state(cpu, intid).enabled = true;
    }

    /// Disables an interrupt.
    pub fn disable(&mut self, cpu: usize, intid: IntId) {
        self.bump(self.affected_cpu(cpu, intid));
        self.state(cpu, intid).enabled = false;
    }

    /// Routes an SPI to a CPU (GICD_ITARGETSR / IROUTER).
    pub fn set_spi_target(&mut self, intid: IntId, cpu: usize) {
        assert!((SPI_BASE..INTID_LIMIT).contains(&intid));
        assert!(cpu < self.ncpus);
        // Both the old and the new target see a different
        // `pending_for` answer after a retarget.
        let old = self.spi_target[(intid - SPI_BASE) as usize];
        self.bump(old);
        if cpu != old {
            self.bump(cpu);
        }
        self.spi_target[(intid - SPI_BASE) as usize] = cpu;
    }

    /// Marks an SPI pending (a device raised its line).
    pub fn raise_spi(&mut self, intid: IntId) {
        assert!(intid >= SPI_BASE);
        let target = self.spi_target[(intid - SPI_BASE) as usize];
        let s = self.state(0, intid);
        if !s.pending {
            s.pending = true;
            self.pending_spis += 1;
            self.bump(target);
        }
    }

    /// Marks a banked interrupt (SGI/PPI) pending on `cpu`.
    pub fn raise_banked(&mut self, cpu: usize, intid: IntId) {
        assert!(intid < SPI_BASE);
        let s = self.state(cpu, intid);
        if !s.pending {
            s.pending = true;
            self.pending_banked[cpu] += 1;
            self.bump(cpu);
        }
    }

    /// Sends an SGI from `_from` to every CPU in `targets` (a bitmask).
    pub fn send_sgi(&mut self, _from: usize, targets: u16, intid: IntId) {
        assert!(intid < 16, "SGIs are INTIDs 0-15");
        for cpu in 0..self.ncpus {
            if targets & (1 << cpu) != 0 {
                let s = &mut self.banked[cpu][intid as usize];
                if !s.pending {
                    s.pending = true;
                    self.pending_banked[cpu] += 1;
                    self.bump(cpu);
                }
            }
        }
    }

    /// The highest-priority pending, enabled, not-active interrupt for
    /// `cpu` (priorities are not modelled; lowest INTID wins, which is
    /// deterministic and sufficient for the workloads).
    #[inline]
    pub fn pending_for(&self, cpu: usize) -> Option<IntId> {
        if !self.enabled {
            return None;
        }
        // Scans only ever return interrupts in the pending state, so
        // an exact zero pending-count lets each loop be skipped
        // without changing the result. This runs before every
        // interpreter step and almost always finds nothing.
        if self.pending_banked[cpu] > 0 {
            for intid in 0..SPI_BASE {
                let s = &self.banked[cpu][intid as usize];
                if s.pending && s.enabled && !s.active {
                    return Some(intid);
                }
            }
        }
        if self.pending_spis > 0 {
            for intid in SPI_BASE..INTID_LIMIT {
                if self.spi_target[(intid - SPI_BASE) as usize] != cpu {
                    continue;
                }
                let s = self.state_ref(cpu, intid);
                if s.pending && s.enabled && !s.active {
                    return Some(intid);
                }
            }
        }
        None
    }

    /// Acknowledges the pending interrupt for `cpu` (physical
    /// `ICC_IAR1_EL1` read): pending -> active.
    pub fn ack(&mut self, cpu: usize) -> Option<IntId> {
        let intid = self.pending_for(cpu)?;
        self.bump(cpu);
        let s = self.state(cpu, intid);
        s.pending = false;
        s.active = true;
        if intid < SPI_BASE {
            self.pending_banked[cpu] -= 1;
        } else {
            self.pending_spis -= 1;
        }
        Some(intid)
    }

    /// Completes an interrupt (physical `ICC_EOIR1_EL1` write).
    pub fn eoi(&mut self, cpu: usize, intid: IntId) {
        // Deactivation can unblock redelivery, which lands on the
        // banked owner or the SPI target.
        self.bump(self.affected_cpu(cpu, intid));
        self.state(cpu, intid).active = false;
    }

    /// True if `intid` is pending for `cpu`.
    pub fn is_pending(&self, cpu: usize, intid: IntId) -> bool {
        self.state_ref(cpu, intid).pending
    }

    /// True if `intid` is active on `cpu`.
    pub fn is_active(&self, cpu: usize, intid: IntId) -> bool {
        self.state_ref(cpu, intid).active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgi_targets_selected_cpus() {
        let mut d = Distributor::new(4);
        for c in 0..4 {
            d.enable(c, 7);
        }
        d.send_sgi(0, 0b0110, 7);
        assert!(!d.is_pending(0, 7));
        assert!(d.is_pending(1, 7));
        assert!(d.is_pending(2, 7));
        assert!(!d.is_pending(3, 7));
    }

    #[test]
    fn ack_moves_pending_to_active() {
        let mut d = Distributor::new(1);
        d.enable(0, 3);
        d.raise_banked(0, 3);
        assert_eq!(d.ack(0), Some(3));
        assert!(!d.is_pending(0, 3));
        assert!(d.is_active(0, 3));
        // Active interrupts are not re-delivered.
        assert_eq!(d.ack(0), None);
        d.eoi(0, 3);
        assert!(!d.is_active(0, 3));
    }

    #[test]
    fn disabled_interrupts_are_not_delivered() {
        let mut d = Distributor::new(1);
        d.raise_banked(0, 3);
        assert_eq!(d.pending_for(0), None);
        d.enable(0, 3);
        assert_eq!(d.pending_for(0), Some(3));
    }

    #[test]
    fn spis_follow_their_target() {
        let mut d = Distributor::new(2);
        d.enable(0, 40);
        d.enable(1, 40);
        d.set_spi_target(40, 1);
        d.raise_spi(40);
        assert_eq!(d.pending_for(0), None);
        assert_eq!(d.pending_for(1), Some(40));
    }

    #[test]
    fn lowest_intid_wins() {
        let mut d = Distributor::new(1);
        for i in [9, 2, 5] {
            d.enable(0, i);
            d.raise_banked(0, i);
        }
        assert_eq!(d.ack(0), Some(2));
        assert_eq!(d.ack(0), Some(5));
        assert_eq!(d.ack(0), Some(9));
    }

    #[test]
    fn banked_interrupts_are_per_cpu() {
        let mut d = Distributor::new(2);
        d.enable(0, 27);
        d.enable(1, 27);
        d.raise_banked(0, 27);
        assert!(d.is_pending(0, 27));
        assert!(!d.is_pending(1, 27));
    }

    #[test]
    fn epoch_tracks_state_changes_only() {
        let mut d = Distributor::new(2);
        let e0 = d.epoch();
        d.enable(0, 3);
        assert!(d.epoch() > e0);
        let e1 = d.epoch();
        d.raise_banked(0, 3);
        assert!(d.epoch() > e1, "first raise changes state");
        let e2 = d.epoch();
        d.raise_banked(0, 3);
        assert_eq!(d.epoch(), e2, "re-raising a pending line is a no-op");
        d.raise_spi(40);
        assert!(d.epoch() > e2);
        let e3 = d.epoch();
        d.raise_spi(40);
        assert_eq!(d.epoch(), e3);
        d.ack(0);
        assert!(d.epoch() > e3, "ack transitions pending to active");
        let e4 = d.epoch();
        d.eoi(0, 3);
        assert!(d.epoch() > e4);
    }

    #[test]
    fn per_cpu_epochs_move_only_for_affected_cpus() {
        let mut d = Distributor::new(4);
        let before: Vec<u64> = (0..4).map(|c| d.epoch_of(c)).collect();
        // A banked raise touches its owner only.
        d.enable(1, 27);
        d.raise_banked(1, 27);
        assert!(d.epoch_of(1) > before[1]);
        for c in [0, 2, 3] {
            assert_eq!(d.epoch_of(c), before[c], "cpu {c} unaffected");
        }
        // An SGI touches exactly its targets.
        let e2 = d.epoch_of(2);
        d.send_sgi(0, 0b0100, 5);
        assert!(d.epoch_of(2) > e2);
        assert_eq!(d.epoch_of(3), before[3]);
        // SPI state follows the target CPU; a retarget touches both
        // the old and the new target.
        let (e0, e3) = (d.epoch_of(0), d.epoch_of(3));
        d.raise_spi(40);
        assert!(d.epoch_of(0) > e0, "SPI 40 targets cpu 0 by default");
        assert_eq!(d.epoch_of(3), e3);
        let (e0, e3) = (d.epoch_of(0), d.epoch_of(3));
        d.set_spi_target(40, 3);
        assert!(d.epoch_of(0) > e0);
        assert!(d.epoch_of(3) > e3);
        // Ack/EOI land on the delivery CPU.
        d.enable(3, 40);
        let e3 = d.epoch_of(3);
        assert_eq!(d.ack(3), Some(40));
        assert!(d.epoch_of(3) > e3);
        let e3 = d.epoch_of(3);
        d.eoi(3, 40);
        assert!(d.epoch_of(3) > e3);
    }

    #[test]
    fn global_disable_gates_delivery() {
        let mut d = Distributor::new(1);
        d.enable(0, 3);
        d.raise_banked(0, 3);
        d.enabled = false;
        assert_eq!(d.pending_for(0), None);
    }
}
