//! ARM Generic Interrupt Controller model with virtualization support.
//!
//! Models the pieces of the GIC architecture the NEVE evaluation
//! exercises (paper Sections 2, 4 and 6):
//!
//! - the **distributor** ([`dist`]): SGI/PPI/SPI pending-enable-active
//!   state and CPU targeting,
//! - the **physical CPU interface**: acknowledge (`ICC_IAR1_EL1`) and
//!   end-of-interrupt (`ICC_EOIR1_EL1`) for software running on the
//!   physical interrupt flow (the host hypervisor),
//! - the **virtual CPU interface** ([`vgic`]): a VM acknowledges and
//!   completes *virtual* interrupts queued in list registers entirely in
//!   hardware — the reason the paper's Virtual EOI microbenchmark costs 71
//!   cycles with zero traps at every nesting level (Tables 1 and 6),
//! - the **hypervisor control interface**: the `ICH_*` registers of paper
//!   Table 5 (list registers, `ICH_HCR/VMCR/MISR/EISR/ELRSR/APxR`),
//!   reachable either as GICv3 system registers or through the GICv2
//!   memory-mapped window ([`mmio`]).

pub mod dist;
pub mod lr;
pub mod mmio;
pub mod vgic;

pub use dist::{Distributor, IntId, INTID_LIMIT};
pub use lr::{ListRegister, LrState};
pub use vgic::{Gic, MaintenanceReason};
