//! The virtual CPU interface and hypervisor control interface.
//!
//! A hypervisor injects virtual interrupts by programming *list
//! registers* (`ICH_LR<n>_EL2`); the VM then acknowledges and completes
//! them through its CPU interface **without trapping** — the property the
//! paper's Virtual EOI microbenchmark isolates (Tables 1/6 report 71
//! cycles and zero traps at every nesting depth). The hypervisor control
//! interface (paper Table 5) is the set of `ICH_*` registers the *guest*
//! hypervisor must access through the host under ARMv8.3, and which NEVE
//! converts to cached copies.

use crate::dist::{Distributor, IntId};
use crate::lr::{ListRegister, LrState};
use neve_sysreg::regs::{SysReg, NUM_LIST_REGS};

/// Why a maintenance interrupt is pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceReason {
    /// A virtual interrupt was completed (EOI) and the hypervisor asked
    /// to be told.
    Eoi,
    /// List registers ran dry while more interrupts are queued
    /// (`ICH_HCR_EL2.UIE`).
    Underflow,
}

/// `ICH_HCR_EL2.En` — virtual CPU interface enable.
pub const ICH_HCR_EN: u64 = 1 << 0;
/// `ICH_HCR_EL2.UIE` — underflow interrupt enable.
pub const ICH_HCR_UIE: u64 = 1 << 1;
/// `ICH_HCR_EL2.LRENPIE` — EOI maintenance interrupt enable (modelled
/// after the architectural EOI-count mechanism, simplified to a flag).
pub const ICH_HCR_EOI: u64 = 1 << 2;

/// Per physical CPU virtual-interface state.
#[derive(Debug, Clone, Copy)]
struct VirtIf {
    lrs: [ListRegister; NUM_LIST_REGS as usize],
    /// LRs whose interrupt the VM completed since the hypervisor last
    /// rewrote them (feeds `ICH_EISR_EL2`).
    eoied: [bool; NUM_LIST_REGS as usize],
    hcr: u64,
    vmcr: u64,
    ap0r: u64,
    ap1r: u64,
}

impl Default for VirtIf {
    fn default() -> Self {
        Self {
            lrs: [ListRegister::EMPTY; NUM_LIST_REGS as usize],
            eoied: [false; NUM_LIST_REGS as usize],
            hcr: 0,
            vmcr: 0,
            ap0r: 0,
            ap1r: 0,
        }
    }
}

/// The complete GIC: distributor + one virtual interface per CPU.
#[derive(Debug)]
pub struct Gic {
    /// The distributor (physical interrupt state).
    pub dist: Distributor,
    vifs: Vec<VirtIf>,
    /// Virtual-interface mutation count (list registers, `ICH_HCR`),
    /// folded into [`Gic::epoch`].
    vif_epoch: u64,
    /// Per-CPU virtual-interface mutation counts, folded into
    /// [`Gic::epoch_of`].
    vif_epochs: Vec<u64>,
}

impl Clone for Gic {
    fn clone(&self) -> Self {
        Self {
            dist: self.dist.clone(),
            vifs: self.vifs.clone(),
            vif_epoch: self.vif_epoch,
            vif_epochs: self.vif_epochs.clone(),
        }
    }

    /// Allocation-free when shapes match (delegates to the
    /// distributor's buffer-reusing `clone_from`); machine restore
    /// runs this per fuzz case.
    fn clone_from(&mut self, source: &Self) {
        self.dist.clone_from(&source.dist);
        if self.vifs.len() == source.vifs.len() {
            self.vifs.copy_from_slice(&source.vifs);
        } else {
            self.vifs.clone_from(&source.vifs);
        }
        self.vif_epoch = source.vif_epoch;
        if self.vif_epochs.len() == source.vif_epochs.len() {
            self.vif_epochs.copy_from_slice(&source.vif_epochs);
        } else {
            self.vif_epochs.clone_from(&source.vif_epochs);
        }
    }
}

impl Gic {
    /// Creates a GIC for `ncpus` CPUs.
    pub fn new(ncpus: usize) -> Self {
        Self {
            dist: Distributor::new(ncpus),
            vifs: vec![VirtIf::default(); ncpus],
            vif_epoch: 0,
            vif_epochs: vec![0; ncpus],
        }
    }

    /// Combined mutation epoch over the distributor and every virtual
    /// interface. Strictly increases across any state change that could
    /// alter interrupt delivery — callers may cache a "no interrupt
    /// deliverable" verdict and revalidate it with one comparison.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.vif_epoch + self.dist.epoch()
    }

    /// Per-CPU mutation epoch over `cpu`'s virtual interface and the
    /// distributor state that can feed its deliveries. Holds still
    /// while *other* CPUs churn their interfaces (every world switch
    /// rewrites list registers), which is what lets a parked core's
    /// cached wake verdict survive its neighbours' traps untouched.
    #[inline]
    pub fn epoch_of(&self, cpu: usize) -> u64 {
        self.vif_epochs[cpu] + self.dist.epoch_of(cpu)
    }

    // --- Hypervisor control interface (ICH_*) ---

    /// Reads an `ICH_*` register for `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a GIC hypervisor-interface register.
    pub fn ich_read(&self, cpu: usize, reg: SysReg) -> u64 {
        let v = &self.vifs[cpu];
        match reg {
            SysReg::IchHcrEl2 => v.hcr,
            SysReg::IchVmcrEl2 => v.vmcr,
            SysReg::IchVtrEl2 => (NUM_LIST_REGS as u64) - 1,
            SysReg::IchLrEl2(n) => v.lrs[n as usize].encode(),
            SysReg::IchAp0rEl2(_) => v.ap0r,
            SysReg::IchAp1rEl2(_) => v.ap1r,
            SysReg::IchEisrEl2 => {
                let mut m = 0u64;
                for (i, e) in v.eoied.iter().enumerate() {
                    if *e {
                        m |= 1 << i;
                    }
                }
                m
            }
            SysReg::IchElrsrEl2 => {
                let mut m = 0u64;
                for (i, lr) in v.lrs.iter().enumerate() {
                    if lr.is_empty() {
                        m |= 1 << i;
                    }
                }
                m
            }
            SysReg::IchMisrEl2 => {
                let mut m = 0u64;
                if self.maintenance_pending(cpu) == Some(MaintenanceReason::Eoi) {
                    m |= 1;
                }
                if self.maintenance_pending(cpu) == Some(MaintenanceReason::Underflow) {
                    m |= 2;
                }
                m
            }
            other => panic!("{other} is not an ICH register"),
        }
    }

    /// Writes an `ICH_*` register for `cpu`. Writes to the read-only
    /// status registers are ignored, as in hardware.
    pub fn ich_write(&mut self, cpu: usize, reg: SysReg, value: u64) {
        self.vif_epoch += 1;
        self.vif_epochs[cpu] += 1;
        let v = &mut self.vifs[cpu];
        match reg {
            SysReg::IchHcrEl2 => v.hcr = value,
            SysReg::IchVmcrEl2 => v.vmcr = value,
            SysReg::IchLrEl2(n) => {
                v.lrs[n as usize] = ListRegister::decode(value);
                v.eoied[n as usize] = false;
            }
            SysReg::IchAp0rEl2(_) => v.ap0r = value,
            SysReg::IchAp1rEl2(_) => v.ap1r = value,
            SysReg::IchVtrEl2 | SysReg::IchEisrEl2 | SysReg::IchElrsrEl2 | SysReg::IchMisrEl2 => {}
            other => panic!("{other} is not an ICH register"),
        }
    }

    // --- VM-facing virtual CPU interface ---

    /// True when the virtual interface would assert the virtual IRQ line
    /// for `cpu` (a pending list register with the interface enabled).
    #[inline]
    pub fn virq_line(&self, cpu: usize) -> bool {
        let v = &self.vifs[cpu];
        v.hcr & ICH_HCR_EN != 0
            && v.lrs
                .iter()
                .any(|lr| matches!(lr.state, LrState::Pending | LrState::PendingActive))
    }

    /// VM acknowledge (`ICC_IAR1_EL1` read under virtualization): the
    /// highest-priority pending list register goes active. Hardware does
    /// this without hypervisor involvement.
    pub fn virq_ack(&mut self, cpu: usize) -> Option<IntId> {
        self.vif_epoch += 1;
        self.vif_epochs[cpu] += 1;
        let v = &mut self.vifs[cpu];
        if v.hcr & ICH_HCR_EN == 0 {
            return None;
        }
        let mut best: Option<usize> = None;
        for (i, lr) in v.lrs.iter().enumerate() {
            if matches!(lr.state, LrState::Pending | LrState::PendingActive) {
                let better = match best {
                    None => true,
                    Some(b) => (lr.priority, lr.vintid) < (v.lrs[b].priority, v.lrs[b].vintid),
                };
                if better {
                    best = Some(i);
                }
            }
        }
        let i = best?;
        let lr = &mut v.lrs[i];
        lr.state = match lr.state {
            LrState::Pending => LrState::Active,
            LrState::PendingActive => LrState::Active,
            s => s,
        };
        Some(lr.vintid)
    }

    /// VM end-of-interrupt (`ICC_EOIR1_EL1` write under virtualization):
    /// the active list register holding `vintid` is retired; a linked
    /// hardware interrupt is deactivated in the distributor. Returns true
    /// if a matching active LR was found.
    pub fn virq_eoi(&mut self, cpu: usize, vintid: IntId) -> bool {
        self.vif_epoch += 1;
        self.vif_epochs[cpu] += 1;
        // Find the matching LR without holding a mutable borrow across
        // the distributor deactivation below.
        let idx = {
            let v = &self.vifs[cpu];
            v.lrs
                .iter()
                .position(|lr| lr.state == LrState::Active && lr.vintid == vintid)
        };
        let Some(i) = idx else { return false };
        let (hw, pintid) = {
            let lr = &mut self.vifs[cpu].lrs[i];
            lr.state = LrState::Invalid;
            (lr.hw, lr.pintid)
        };
        self.vifs[cpu].eoied[i] = true;
        if hw {
            self.dist.eoi(cpu, pintid);
        }
        true
    }

    /// Maintenance interrupt status for `cpu`.
    pub fn maintenance_pending(&self, cpu: usize) -> Option<MaintenanceReason> {
        let v = &self.vifs[cpu];
        if v.hcr & ICH_HCR_EN == 0 {
            return None;
        }
        if v.hcr & ICH_HCR_EOI != 0 && v.eoied.iter().any(|e| *e) {
            return Some(MaintenanceReason::Eoi);
        }
        if v.hcr & ICH_HCR_UIE != 0 {
            let occupied = v.lrs.iter().filter(|lr| !lr.is_empty()).count();
            if occupied <= 1 {
                return Some(MaintenanceReason::Underflow);
            }
        }
        None
    }

    /// Convenience for hypervisors: injects `vintid` into the first empty
    /// list register of `cpu`. Returns the LR index used, or `None` when
    /// all list registers are occupied (the hypervisor must then queue in
    /// software and enable the underflow maintenance interrupt).
    pub fn inject_virq(&mut self, cpu: usize, vintid: IntId, priority: u8) -> Option<u8> {
        self.vif_epoch += 1;
        self.vif_epochs[cpu] += 1;
        let v = &mut self.vifs[cpu];
        for (i, lr) in v.lrs.iter_mut().enumerate() {
            if lr.is_empty() {
                *lr = ListRegister::pending(vintid, priority);
                v.eoied[i] = false;
                return Some(i as u8);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gic_on(cpu: usize) -> Gic {
        let mut g = Gic::new(2);
        g.ich_write(cpu, SysReg::IchHcrEl2, ICH_HCR_EN);
        g
    }

    #[test]
    fn inject_ack_eoi_cycle() {
        let mut g = gic_on(0);
        let lr = g.inject_virq(0, 27, 0x80).unwrap();
        assert!(g.virq_line(0));
        assert_eq!(g.virq_ack(0), Some(27));
        assert!(!g.virq_line(0), "active interrupts do not assert IRQ");
        assert!(g.virq_eoi(0, 27));
        assert_eq!(g.ich_read(0, SysReg::IchEisrEl2), 1 << lr);
        assert_eq!(
            g.ich_read(0, SysReg::IchElrsrEl2) & (1 << lr),
            1 << lr,
            "LR empty after EOI"
        );
    }

    #[test]
    fn disabled_interface_delivers_nothing() {
        let mut g = Gic::new(1);
        g.inject_virq(0, 27, 0);
        assert!(!g.virq_line(0));
        assert_eq!(g.virq_ack(0), None);
    }

    #[test]
    fn priority_orders_acknowledge() {
        let mut g = gic_on(0);
        g.inject_virq(0, 40, 0xa0);
        g.inject_virq(0, 41, 0x20);
        g.inject_virq(0, 42, 0x60);
        assert_eq!(g.virq_ack(0), Some(41));
        assert_eq!(g.virq_ack(0), Some(42));
        assert_eq!(g.virq_ack(0), Some(40));
    }

    #[test]
    fn list_registers_fill_up() {
        let mut g = gic_on(0);
        for i in 0..NUM_LIST_REGS {
            assert!(g.inject_virq(0, 32 + i as u32, 0).is_some());
        }
        assert_eq!(g.inject_virq(0, 99, 0), None);
    }

    #[test]
    fn hw_linked_eoi_deactivates_physical_interrupt() {
        let mut g = gic_on(0);
        g.dist.enable(0, 40);
        g.dist.set_spi_target(40, 0);
        g.dist.raise_spi(40);
        assert_eq!(g.dist.ack(0), Some(40));
        // Inject as hardware-linked.
        let lr = ListRegister {
            vintid: 40,
            pintid: 40,
            priority: 0,
            hw: true,
            state: LrState::Pending,
        };
        g.ich_write(0, SysReg::IchLrEl2(0), lr.encode());
        assert_eq!(g.virq_ack(0), Some(40));
        assert!(g.dist.is_active(0, 40));
        g.virq_eoi(0, 40);
        assert!(!g.dist.is_active(0, 40), "physical deactivation followed");
    }

    #[test]
    fn underflow_maintenance_when_lrs_run_dry() {
        let mut g = Gic::new(1);
        g.ich_write(0, SysReg::IchHcrEl2, ICH_HCR_EN | ICH_HCR_UIE);
        g.inject_virq(0, 32, 0);
        g.inject_virq(0, 33, 0);
        assert_eq!(g.maintenance_pending(0), None);
        g.virq_ack(0);
        g.virq_eoi(0, 32);
        assert_eq!(g.maintenance_pending(0), Some(MaintenanceReason::Underflow));
    }

    #[test]
    fn eoi_maintenance_when_enabled() {
        let mut g = Gic::new(1);
        g.ich_write(0, SysReg::IchHcrEl2, ICH_HCR_EN | ICH_HCR_EOI);
        g.inject_virq(0, 32, 0);
        g.virq_ack(0);
        g.virq_eoi(0, 32);
        assert_eq!(g.maintenance_pending(0), Some(MaintenanceReason::Eoi));
        assert_eq!(g.ich_read(0, SysReg::IchMisrEl2) & 1, 1);
        // Rewriting the LR clears the EOI latch.
        g.ich_write(0, SysReg::IchLrEl2(0), 0);
        assert_eq!(g.maintenance_pending(0), None);
    }

    #[test]
    fn ich_lr_read_back_round_trips() {
        let mut g = gic_on(0);
        let lr = ListRegister::pending(123, 7).encode();
        g.ich_write(0, SysReg::IchLrEl2(2), lr);
        assert_eq!(g.ich_read(0, SysReg::IchLrEl2(2)), lr);
    }

    #[test]
    fn vtr_reports_list_register_count() {
        let g = Gic::new(1);
        assert_eq!(g.ich_read(0, SysReg::IchVtrEl2) + 1, NUM_LIST_REGS as u64);
    }

    #[test]
    fn per_cpu_interfaces_are_independent() {
        let mut g = Gic::new(2);
        g.ich_write(0, SysReg::IchHcrEl2, ICH_HCR_EN);
        g.ich_write(1, SysReg::IchHcrEl2, ICH_HCR_EN);
        g.inject_virq(0, 32, 0);
        assert!(g.virq_line(0));
        assert!(!g.virq_line(1));
    }

    #[test]
    fn epoch_covers_vif_and_distributor_mutations() {
        let mut g = gic_on(0);
        let e0 = g.epoch();
        g.inject_virq(0, 32, 0);
        assert!(g.epoch() > e0, "LR injection bumps the epoch");
        let e1 = g.epoch();
        g.virq_ack(0);
        assert!(g.epoch() > e1);
        let e2 = g.epoch();
        g.virq_eoi(0, 32);
        assert!(g.epoch() > e2);
        let e3 = g.epoch();
        g.ich_write(0, SysReg::IchHcrEl2, 0);
        assert!(g.epoch() > e3, "ICH writes bump the epoch");
        let e4 = g.epoch();
        g.dist.enable(0, 27);
        g.dist.raise_banked(0, 27);
        assert!(g.epoch() > e4, "distributor mutations show through");
        let e5 = g.epoch();
        assert_eq!(g.epoch(), e5, "reads leave the epoch alone");
    }

    #[test]
    fn per_cpu_epoch_ignores_other_cpus_interface_churn() {
        let mut g = Gic::new(2);
        let e1 = g.epoch_of(1);
        // cpu 0 churns its interface the way a world switch does:
        // cpu 1's epoch must not move.
        g.ich_write(0, SysReg::IchHcrEl2, ICH_HCR_EN);
        g.inject_virq(0, 32, 0);
        g.virq_ack(0);
        g.virq_eoi(0, 32);
        assert_eq!(g.epoch_of(1), e1);
        // A change aimed at cpu 1 does move it.
        g.ich_write(1, SysReg::IchHcrEl2, ICH_HCR_EN);
        assert!(g.epoch_of(1) > e1);
    }

    #[test]
    fn eoi_of_unknown_vintid_is_rejected() {
        let mut g = gic_on(0);
        g.inject_virq(0, 32, 0);
        g.virq_ack(0);
        assert!(!g.virq_eoi(0, 99));
        assert!(g.virq_eoi(0, 32));
    }
}
